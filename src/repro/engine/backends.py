"""Pluggable execution backends for client local training.

A backend answers one question: *where does a client's local round actually
run?* The simulation semantics (virtual time, event order, RNG streams) are
owned by the training loops; backends only move the numeric work, so every
backend must produce bitwise-identical results for the same dispatch
sequence:

- :class:`SerialBackend` — runs the round inline in the server's shared
  workspace model, exactly like the original sequential simulator.
- :class:`ThreadPoolBackend` — runs rounds in worker threads, each with its
  own deep-copied model replica. NumPy releases the GIL inside the heavy
  kernels, so local training genuinely overlaps.
- :class:`ProcessPoolBackend` — runs rounds in worker processes. Each job
  ships the client (with its RNG) and a model replica to the worker and
  ships the advanced RNG state back, preserving per-client streams.

Every client is in at most one in-flight job at a time (the schedulers
guarantee this), so per-client RNG streams advance in the same order under
every backend.
"""

from __future__ import annotations

import copy
import os
import queue
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.fl.client import Client
from repro.fl.strategies import LocalUpdate
from repro.fl.timing import TimingModel
from repro.nn.segmented import SegmentedModel


class _Resolved:
    """A pre-computed result with a Future-compatible ``result()``."""

    __slots__ = ("_value",)

    def __init__(self, value):
        self._value = value

    def result(self):
        return self._value


class ExecutionBackend:
    """Interface: submit client rounds, collect their LocalUpdates."""

    def submit(
        self,
        client: Client,
        template: SegmentedModel,
        global_state: dict[str, np.ndarray],
        timing: TimingModel | None,
    ):
        """Start one client round; returns a handle for :meth:`result`."""
        raise NotImplementedError

    def result(self, handle) -> LocalUpdate:
        """Block until the handle's round is finished and return its update."""
        return handle.result()

    def map_round(
        self,
        clients: list[Client],
        template: SegmentedModel,
        global_state: dict[str, np.ndarray],
        timing: TimingModel | None,
    ) -> list[LocalUpdate]:
        """Run one synchronous round's participants, preserving input order."""
        handles = [
            self.submit(client, template, global_state, timing)
            for client in clients
        ]
        return [self.result(h) for h in handles]

    def close(self) -> None:
        """Release worker resources; the backend may not be reused after."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Inline execution in the shared workspace model (the seed behaviour)."""

    def submit(self, client, template, global_state, timing):
        return _Resolved(client.run_round(template, global_state, timing=timing))


class ThreadPoolBackend(ExecutionBackend):
    """Worker threads over a pool of deep-copied model replicas.

    Replicas are created eagerly on first submit (before any computation is
    in flight) and recycled through a queue, so a worker never trains in a
    model another worker — or the server's evaluation — is touching.
    ``run_round`` loads the broadcast state before every round, so replica
    contents never leak between clients.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._executor: ThreadPoolExecutor | None = None
        self._replicas: queue.Queue | None = None
        self._lock = threading.Lock()

    def _ensure_started(self, template: SegmentedModel) -> None:
        with self._lock:
            if self._executor is not None:
                return
            replicas: queue.Queue = queue.Queue()
            for _ in range(self.max_workers):
                replicas.put(copy.deepcopy(template))
            self._replicas = replicas
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-client",
            )

    def submit(self, client, template, global_state, timing):
        self._ensure_started(template)

        def job() -> LocalUpdate:
            model = self._replicas.get()
            try:
                return client.run_round(model, global_state, timing=timing)
            finally:
                self._replicas.put(model)

        return self._executor.submit(job)

    def close(self):
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
                self._replicas = None


def _process_client_round(
    client: Client,
    model: SegmentedModel,
    global_state: dict[str, np.ndarray],
    timing: TimingModel | None,
) -> tuple[LocalUpdate, dict]:
    """Worker-process entry point: run the round, return update + RNG state."""
    update = client.run_round(model, global_state, timing=timing)
    return update, client.rng.bit_generator.state


class _ProcessHandle:
    """Resolves a worker-process future and replays the client RNG advance."""

    __slots__ = ("_future", "_client")

    def __init__(self, future: Future, client: Client):
        self._future = future
        self._client = client

    def result(self) -> LocalUpdate:
        update, rng_state = self._future.result()
        # The worker advanced a pickled copy of the generator; mirror that
        # advance here so the parent's stream stays continuous.
        self._client.rng.bit_generator.state = rng_state
        return update


class ProcessPoolBackend(ExecutionBackend):
    """Worker processes; each job ships client + model replica by pickle.

    Heavyweight per job (the client's shard and a model replica cross the
    process boundary every round), so this pays off only when local rounds
    are expensive relative to their state. See ROADMAP open items for the
    shared-memory weight plan.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self._executor: ProcessPoolExecutor | None = None

    def _ensure_started(self) -> None:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)

    def submit(self, client, template, global_state, timing):
        self._ensure_started()
        future = self._executor.submit(
            _process_client_round, client, template, global_state, timing
        )
        return _ProcessHandle(future, client)

    def close(self):
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


#: Backend short names used by configuration surfaces.
BACKENDS = ("serial", "thread", "process")


def make_backend(
    name: str, max_workers: int | None = None
) -> ExecutionBackend:
    """Instantiate an execution backend by short name."""
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadPoolBackend(max_workers=max_workers)
    if name == "process":
        return ProcessPoolBackend(max_workers=max_workers)
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
