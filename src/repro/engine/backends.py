"""Pluggable execution backends for client local training.

A backend answers one question: *where does a client's local round actually
run?* The simulation semantics (virtual time, event order, RNG streams) are
owned by the training loops; backends only move the numeric work, so every
backend must produce bitwise-identical results for the same dispatch
sequence:

- :class:`SerialBackend` — runs the round inline in the server's shared
  workspace model, exactly like the original sequential simulator.
- :class:`ThreadPoolBackend` — runs rounds in worker threads, each with its
  own deep-copied model replica. NumPy releases the GIL inside the heavy
  kernels, so local training genuinely overlaps.
- :class:`ProcessPoolBackend` — runs rounds in long-lived worker processes
  that read the model template, global weights and client shards from
  ``multiprocessing.shared_memory`` segments. Only a small job descriptor
  (segment names, layouts, RNG state) crosses the pipe per round, and only
  the round's θ update and advanced RNG state come back. With a
  :class:`~repro.engine.campaign.CampaignSegmentPool` and
  ``persistent=True`` the workers and shard segments additionally survive
  across the runs of one campaign (each shard is published once per
  campaign, not once per run).
- :class:`PicklingProcessPoolBackend` — the naive process backend that
  ships a full model replica plus the client (with its shard) per job;
  kept as the regression baseline the shared-memory benchmark compares
  against.

Every client is in at most one in-flight job at a time (the schedulers
guarantee this), so per-client RNG streams advance in the same order under
every backend. Backends are driven by a single scheduler thread; they are
not thread-safe for concurrent ``submit``/``result`` callers.

All backends optionally run the *frozen-feature cache* fast path
(:mod:`repro.fl.features`): with a ``feature_runtime`` the frozen backbone
ϕ(x) of each distinct shard is materialised once (per campaign, with a
pool) and client rounds execute head-only — bitwise identical to the full
forward. The process backend additionally pools test-set shards for
:class:`PooledEvaluator`, which turns ``Server.evaluate`` into parallel
worker jobs with an exact parent-side count reduction.

Fault tolerance (see :mod:`repro.engine.faults` and DESIGN.md
"Fault-tolerant runtime"): with a :class:`~repro.engine.faults.FaultPolicy`
the process backend detects dead workers, verifies segment fingerprints on
worker attach, enforces per-job deadlines through a watchdog thread, and
redispatches the *exact* job blob with seeded exponential backoff — every
job is a pure function of its dispatch-time RNG state and the published
segments, so recovery is bitwise invisible. After ``max_retries``
consecutive failures a job degrades process → thread → serial and still
completes identically, counted on the exported ``faults.*`` group. A
:class:`~repro.engine.faults.ChaosPlan` injects seeded kills / delays /
corruptions for replayable failure testing.

See DESIGN.md ("Shared-memory process backend") for the segment layout and
worker lifecycle.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import queue
import threading
import time
from concurrent.futures import BrokenExecutor, Future
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from multiprocessing import get_context, resource_tracker, shared_memory
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.campaign import (
    register_emergency_cleanup,
    unlink_segment,
    unregister_emergency_cleanup,
)
from repro.engine.faults import (
    FAULTS,
    ChaosPlan,
    FaultPolicy,
    SegmentCorruption,
    segment_fingerprint,
)

from repro.data.dataset import ArrayDataset, Dataset
from repro.fl import fastpath
from repro.fl.client import Client
from repro.fl.features import FeatureRuntime, eval_pool_key, feature_pool_key
from repro.fl.strategies import LocalUpdate
from repro.fl.timing import TimingModel
from repro.nn.segmented import SegmentedModel
from repro.nn.serialization import theta_keys
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.obs.metrics import CounterGroup

if TYPE_CHECKING:  # pragma: no cover - typing only (campaign imports the
    # layout helpers below, so the runtime import goes the other way)
    from repro.engine.campaign import CampaignSegmentPool, PoolSegment

#: environment override for the worker start method ("fork" | "spawn" |
#: "forkserver"); CI runs the determinism suite under spawn through this.
START_METHOD_ENV = "REPRO_PROCESS_START_METHOD"


class _Resolved:
    """A pre-computed result with a Future-compatible ``result()``."""

    __slots__ = ("_value",)

    def __init__(self, value):
        self._value = value

    def result(self):
        return self._value


class ExecutionBackend:
    """Interface: submit client rounds, collect their LocalUpdates."""

    #: whether this backend may group compatible clients into block-stacked
    #: cohort solves (:func:`repro.fl.fastpath.cohort_units`); class-level
    #: default so lightweight subclasses keep the flag without chaining
    #: ``__init__``
    cohort_solver: bool = True

    def submit(
        self,
        client: Client,
        template: SegmentedModel,
        global_state: dict[str, np.ndarray],
        timing: TimingModel | None,
    ):
        """Start one client round; returns a handle for :meth:`result`."""
        raise NotImplementedError

    def submit_many(
        self,
        clients: list[Client],
        template: SegmentedModel,
        global_state: dict[str, np.ndarray],
        timing: TimingModel | None,
    ) -> list:
        """Start one round per client; handles in input order.

        The grouped entry point lets backends batch compatible clients into
        cohort solves (one block-stacked job instead of N per-client jobs)
        while still returning one handle per client — results are bitwise
        identical to N :meth:`submit` calls, each handle resolving to its
        client's LocalUpdate. The base implementation is exactly that loop.
        """
        return [
            self.submit(client, template, global_state, timing)
            for client in clients
        ]

    def result(self, handle) -> LocalUpdate:
        """Block until the handle's round is finished and return its update."""
        return handle.result()

    def map_round(
        self,
        clients: list[Client],
        template: SegmentedModel,
        global_state: dict[str, np.ndarray],
        timing: TimingModel | None,
    ) -> list[LocalUpdate]:
        """Run one synchronous round's participants, preserving input order."""
        handles = self.submit_many(clients, template, global_state, timing)
        return [self.result(h) for h in handles]

    def close(self) -> None:
        """Release worker resources; the backend may not be reused after."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: lanes per dispatched cohort job on the pooled backends. One job per
#: cohort would serialise a whole round onto a single worker and balloon
#: the per-job payload; chunking keeps every worker busy and bounds blob
#: sizes. Lanes are mutually independent inside a plan — each replays its
#: own client's kernel tiling and RNG draws — so any chunking is bitwise
#: invisible. The serial backend keeps cohorts whole (nothing to overlap;
#: bigger stacks amortise better).
_COHORT_JOB_LANES = 64


def _cohort_chunks(positions: list) -> list:
    return [
        positions[start : start + _COHORT_JOB_LANES]
        for start in range(0, len(positions), _COHORT_JOB_LANES)
    ]


class SerialBackend(ExecutionBackend):
    """Inline execution in the shared workspace model (the seed behaviour).

    With a :class:`~repro.fl.features.FeatureRuntime`, client rounds
    consume cached ϕ(x) features (head-only execution, bitwise identical);
    without one, the full-forward seed path runs.
    """

    #: class-level default so lightweight subclasses (tests wrap submit
    #: without chaining __init__) keep the uncached seed behaviour
    feature_runtime: FeatureRuntime | None = None

    def __init__(
        self,
        feature_runtime: FeatureRuntime | None = None,
        cohort_solver: bool = True,
    ):
        self.feature_runtime = feature_runtime
        self.cohort_solver = cohort_solver

    def submit(self, client, template, global_state, timing):
        features = (
            self.feature_runtime.features_for(client, template)
            if self.feature_runtime is not None
            else None
        )
        return _Resolved(
            client.run_round(
                template, global_state, timing=timing, features=features
            )
        )

    def submit_many(self, clients, template, global_state, timing):
        # Cohort grouping needs cached features, at least two clients and
        # the stock per-client path (a subclass overriding ``submit``
        # customises per-client behaviour the cohort would bypass).
        if (
            len(clients) < 2
            or not self.cohort_solver
            or self.feature_runtime is None
            or type(self).submit is not SerialBackend.submit
        ):
            return super().submit_many(clients, template, global_state, timing)
        chain = template.phi_prefix_chain()
        features = [
            self.feature_runtime.features_for(client, template, chain=chain)
            for client in clients
        ]
        shapes = [None if f is None else tuple(f.shape[1:]) for f in features]
        units = fastpath.cohort_units(clients, template, global_state, shapes)
        handles: list = [None] * len(clients)
        for positions, layout in units or ():
            members = [clients[i] for i in positions]
            feats = [features[i] for i in positions]
            updates = fastpath.run_cohort(
                members, template, global_state, timing, feats, layout
            )
            if updates is None:
                continue  # late disagreement: members fall through below
            for pos, update in zip(positions, updates):
                handles[pos] = _Resolved(update)
        for i, client in enumerate(clients):
            if handles[i] is None:
                handles[i] = self.submit(client, template, global_state, timing)
        return handles


class ThreadPoolBackend(ExecutionBackend):
    """Worker threads over a pool of deep-copied model replicas.

    Replicas are created eagerly on first submit (before any computation is
    in flight) and recycled through a queue, so a worker never trains in a
    model another worker — or the server's evaluation — is touching.
    ``run_round`` loads the broadcast state before every round, so replica
    contents never leak between clients.

    Feature caching: ϕ(x) arrays are built once on the *template* (inside
    ``submit``, on the scheduler thread, before any worker could touch it)
    and shared read-only by every worker's replica rounds.

    Fault layer: thread jobs mutate their client's RNG *in this process*,
    so a retry would double-advance the stream — redispatch is unsound
    here and only the process backend retries. The thread backend instead
    honours a :class:`~repro.engine.faults.ChaosPlan`'s ``delay`` events
    (seeded stalls inside the job) and *observes* a
    :class:`~repro.engine.faults.FaultPolicy` deadline post-hoc on the
    ``faults.timeouts`` counter (threads cannot be reclaimed). Both are
    zero-overhead when unset.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        feature_runtime: FeatureRuntime | None = None,
        cohort_solver: bool = True,
        fault_policy: FaultPolicy | None = None,
        chaos: ChaosPlan | None = None,
    ):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.feature_runtime = feature_runtime
        self.cohort_solver = cohort_solver
        self.fault_policy = fault_policy
        self.chaos = chaos
        #: global dispatch index for chaos addressing (counts every job)
        self._job_index = 0
        self._executor: ThreadPoolExecutor | None = None
        self._replicas: queue.Queue | None = None
        self._lock = threading.Lock()

    def _submit_traced(self, fn):
        """Submit ``fn``, wrapped with this job's chaos delay / deadline.

        The chaos event is resolved *here*, on the scheduler thread, so
        the dispatch-order job index — not worker scheduling — addresses
        the schedule; the sleep itself happens inside the worker.
        """
        if self.fault_policy is None and self.chaos is None:
            return self._executor.submit(fn)
        index = self._job_index
        self._job_index += 1
        delay = 0.0
        if self.chaos is not None:
            delay = self.chaos.delay_for(index)
            if delay:
                FAULTS["chaos_delays"] += 1
        deadline = (
            self.fault_policy.job_deadline
            if self.fault_policy is not None
            else None
        )

        def traced():
            t0 = time.monotonic()
            if delay:
                time.sleep(delay)
            try:
                return fn()
            finally:
                if (
                    deadline is not None
                    and time.monotonic() - t0 > deadline
                ):
                    FAULTS["timeouts"] += 1

        return self._executor.submit(traced)

    def _ensure_started(self, template: SegmentedModel) -> None:
        with self._lock:
            if self._executor is not None:
                return
            replicas: queue.Queue = queue.Queue()
            for _ in range(self.max_workers):
                replicas.put(copy.deepcopy(template))
            self._replicas = replicas
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-client",
            )

    def submit(self, client, template, global_state, timing):
        self._ensure_started(template)
        features = (
            self.feature_runtime.features_for(client, template)
            if self.feature_runtime is not None
            else None
        )

        def job() -> LocalUpdate:
            model = self._replicas.get()
            try:
                return client.run_round(
                    model, global_state, timing=timing, features=features
                )
            finally:
                self._replicas.put(model)

        return self._submit_traced(job)

    def submit_many(self, clients, template, global_state, timing):
        if (
            len(clients) < 2
            or not self.cohort_solver
            or self.feature_runtime is None
            or type(self).submit is not ThreadPoolBackend.submit
        ):
            return super().submit_many(clients, template, global_state, timing)
        self._ensure_started(template)
        chain = template.phi_prefix_chain()
        features = [
            self.feature_runtime.features_for(client, template, chain=chain)
            for client in clients
        ]
        shapes = [None if f is None else tuple(f.shape[1:]) for f in features]
        units = fastpath.cohort_units(clients, template, global_state, shapes)
        handles: list = [None] * len(clients)
        signature = None
        if units:
            # Probed on the scheduler thread: worker jobs must never walk
            # the template, which a later ``submit`` may be forwarding
            # through for features. Same reason the planned durations are
            # computed here and stamped onto the solved updates in the job.
            _, signature = fastpath.head_ops(template)
        chunks = [
            (chunk, layout)
            for positions, layout in units or ()
            for chunk in _cohort_chunks(positions)
        ]
        for positions, layout in chunks:
            members = [clients[i] for i in positions]
            feats = [features[i] for i in positions]
            secs = (
                None
                if timing is None
                else [
                    member.planned_round_seconds(template, timing)
                    for member in members
                ]
            )

            def job(members=members, feats=feats, layout=layout, secs=secs):
                updates = fastpath.run_cohort(
                    members, template, global_state, None, feats, layout,
                    signature=signature,
                )
                if updates is None:
                    # Late disagreement: the exact per-member path, each
                    # round in a pooled replica like a per-client job.
                    updates = []
                    for member, member_feats in zip(members, feats):
                        model = self._replicas.get()
                        try:
                            updates.append(
                                member.run_round(
                                    model,
                                    global_state,
                                    timing=timing,
                                    features=member_feats,
                                )
                            )
                        finally:
                            self._replicas.put(model)
                    return updates
                if secs is not None:
                    for update, sec in zip(updates, secs):
                        update.train_seconds = sec
                return updates

            future = self._submit_traced(job)
            for index, pos in enumerate(positions):
                handles[pos] = _CohortMemberHandle(future, index)
        for i, client in enumerate(clients):
            if handles[i] is None:
                handles[i] = self.submit(client, template, global_state, timing)
        return handles

    def close(self):
        # Idempotent and exception-safe: the executor reference is cleared
        # *before* the (blocking, possibly raising) shutdown, so a second
        # close — or a close after a crashed run — is a no-op.
        with self._lock:
            executor, self._executor = self._executor, None
            self._replicas = None
        if executor is not None:
            executor.shutdown(wait=True)


class _CohortMemberHandle:
    """One member's view of a cohort job: ``result()`` is its lane's update."""

    __slots__ = ("_future", "_index")

    def __init__(self, future, index: int):
        self._future = future
        self._index = index

    def result(self) -> LocalUpdate:
        return self._future.result()[self._index]


# ---------------------------------------------------------------------------
# Shared-memory process backend
# ---------------------------------------------------------------------------

#: alignment of every array inside a segment (cache line / SIMD friendly)
_ALIGN = 64


def _array_layout(
    arrays: dict[str, np.ndarray]
) -> tuple[dict[str, tuple[int, tuple, str]], int]:
    """Plan the packed layout ``key -> (offset, shape, dtype.str)`` + size."""
    layout: dict[str, tuple[int, tuple, str]] = {}
    offset = 0
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        offset = -(-offset // _ALIGN) * _ALIGN
        layout[key] = (offset, tuple(arr.shape), arr.dtype.str)
        offset += arr.nbytes
    return layout, max(offset, 1)


def _write_arrays(buf, layout, arrays) -> None:
    for key, (offset, shape, dtype) in layout.items():
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        view[...] = arrays[key]


def _slab_wire_layout(
    state: dict[str, np.ndarray], slab_layout
) -> tuple[dict[str, tuple[int, tuple, str]], int, int, list[str]]:
    """Wire layout for a slab-backed state: sorted ϕ keys, then the θ slab.

    The θ keys' entries point *into* one trailing block that mirrors the
    server slab's internal packing, so publishing θ is a single memcpy of
    ``state.theta_slab`` — workers keep reading the ordinary per-key
    ``(offset, shape, dtype)`` entries and never see the difference.
    Returns ``(layout, nbytes, theta_offset, phi_keys)``.
    """
    layout: dict[str, tuple[int, tuple, str]] = {}
    theta = set(slab_layout.keys)
    phi_keys = [key for key in sorted(state) if key not in theta]
    offset = 0
    for key in phi_keys:
        arr = state[key]
        offset = -(-offset // _ALIGN) * _ALIGN
        layout[key] = (offset, tuple(arr.shape), arr.dtype.str)
        offset += arr.nbytes
    offset = -(-offset // _ALIGN) * _ALIGN
    theta_offset = offset
    itemsize = np.dtype(np.float64).itemsize
    dtype_str = np.dtype(np.float64).str
    for key, shape, elem_offset in zip(
        slab_layout.keys, slab_layout.shapes, slab_layout.offsets
    ):
        layout[key] = (theta_offset + elem_offset * itemsize, shape, dtype_str)
    nbytes = theta_offset + slab_layout.total * itemsize
    return layout, max(nbytes, 1), theta_offset, phi_keys


def _view_arrays(buf, layout) -> dict[str, np.ndarray]:
    return {
        key: np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        for key, (offset, shape, dtype) in layout.items()
    }


def _untracked_attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without resource-tracker custody.

    On POSIX Pythons before 3.13, merely *attaching* registers the segment
    with the resource tracker, which would unlink it when this worker exits
    — destroying a segment the parent still owns (and, under fork, racing
    the tracker the parent shares). The parent manages segment lifetime, so
    suppress the registration for the duration of the attach; the worker is
    single-threaded, so the swap cannot be observed concurrently.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


#: per-worker caches: model replicas by template-segment name (workers are
#: campaign-lived, so a new run's template arrives as a new segment, not a
#: pool restart), attached segments by name, reconstructed clients by
#: (shard-segment name, client-descriptor digest) — the same shard hosts a
#: different client descriptor per method of a campaign — and fused
#: evaluation plans by template name (each mapping (head signature,
#: feature shape) to a FusedHeadPlan, keyed like the feature segments the
#: plans consume). All of it is plain per-process memory: a killed worker
#: takes its plans with it, leaving nothing to clean up.
_WORKER: dict = {
    "models": {},
    "segments": {},
    "clients": {},
    "eval_plans": {},
    # Per-template cohort caches: {"probes": layout-probe plans keyed by
    # (signature, shape), "plans": CohortPlans keyed by pool key} — the
    # worker-process mirror of fastpath's module-level cohort plan pool.
    "cohort_plans": {},
}

#: model replicas a worker keeps alive at once; a campaign uses one
#: template per run, so 2 covers the running run plus its predecessor.
_WORKER_MODEL_CACHE = 2


def _shm_worker_init() -> None:
    """Worker startup: reset the caches (fresh under spawn, paranoid under
    fork, where the parent's module state was inherited)."""
    _WORKER["models"] = {}
    _WORKER["segments"] = {}
    _WORKER["clients"] = {}
    _WORKER["eval_plans"] = {}
    _WORKER["cohort_plans"] = {}
    _WORKER["job_pins"] = set()


#: attachments a worker keeps mapped at once. Shard/state segments live
#: for a whole campaign, but budget-evicted feature/eval segments come
#: back under fresh shm names — an unbounded cache would keep every dead
#: mapping resident, leaking worker RSS exactly under the memory pressure
#: the byte budget targets. A job touches at most a handful of segments,
#: so recently-used entries (this job's) are never the LRU victim.
_WORKER_SEGMENT_CACHE = 32


def _worker_segment(name: str) -> shared_memory.SharedMemory:
    segments = _WORKER["segments"]
    seg = segments.get(name)
    if seg is not None:
        segments[name] = segments.pop(name)  # LRU touch
        return seg
    seg = _untracked_attach(name)
    segments[name] = seg
    if len(segments) > _WORKER_SEGMENT_CACHE:
        # Cached clients hold live views into their shard segments (and
        # shards are never budget-evicted parent-side), so those names
        # stay pinned, as is every segment of the job currently executing
        # (a cohort job holds 1 + 2·members mappings live at once — numpy
        # views do not reliably trip the BufferError guard below, so an
        # LRU victim mid-job would unmap memory the job still reads);
        # everything else unmaps oldest-first.
        pinned = {key[1] for key in _WORKER["clients"]}
        pinned.update(_WORKER.get("job_pins", ()))
        pinned.add(name)
        for old in list(segments):
            if len(segments) <= _WORKER_SEGMENT_CACHE:
                break
            if old in pinned:
                continue
            victim = segments.pop(old)
            try:
                victim.close()
            except BufferError:  # a live view still pins it; keep it
                segments[old] = victim
    return seg


def _worker_model(name: str, nbytes: int) -> SegmentedModel:
    """The worker's replica of the template published in segment ``name``.

    The pickled template is read from shared memory exactly once per
    (worker, template); the attachment is closed immediately — only the
    unpickled replica is cached. Older replicas (and the clients rebuilt
    against them — a client cached for run N must not train in run N+1's
    replica) are evicted beyond a small window so a long campaign's workers
    do not accumulate one model per run.
    """
    model = _WORKER["models"].get(name)
    if model is None:
        seg = _untracked_attach(name)
        try:
            model = pickle.loads(bytes(seg.buf[:nbytes]))
        finally:
            seg.close()
        while len(_WORKER["models"]) >= _WORKER_MODEL_CACHE:
            evicted = next(iter(_WORKER["models"]))
            del _WORKER["models"][evicted]
            for key in [k for k in _WORKER["clients"] if k[0] == evicted]:
                del _WORKER["clients"][key]
            _WORKER["eval_plans"].pop(evicted, None)
            _WORKER["cohort_plans"].pop(evicted, None)
        _WORKER["models"][name] = model
    return model


def _job_preamble(job: dict) -> None:
    """Fault-layer job prologue: injected chaos delay + attach verification.

    ``chaos_delay`` (set by a :class:`~repro.engine.faults.ChaosPlan`, and
    only on a job's first dispatch — a retry must not stall again) stalls
    the job to drive it past a watchdog deadline. ``fingerprints`` maps
    segment names to ``(nbytes, digest)``: every segment this process has
    not attached yet is verified against its published BLAKE2b fingerprint
    before the solve reads it, and a mismatch raises
    :class:`~repro.engine.faults.SegmentCorruption` back to the parent,
    which repairs the bytes (in place — cached attachments see the repair)
    and redispatches. Both fields are absent when the fault layer is off,
    so the fast path pays two dict lookups.
    """
    delay = job.get("chaos_delay")
    if delay:
        time.sleep(delay)
    fingerprints = job.get("fingerprints")
    if fingerprints:
        attached = _WORKER["segments"]
        for name, (nbytes, digest) in fingerprints.items():
            if name in attached:
                continue  # verified when this process first attached it
            seg = _worker_segment(name)
            if segment_fingerprint(seg.buf, nbytes) != digest:
                raise SegmentCorruption(name)


def _shm_client_round(job_blob: bytes) -> tuple[LocalUpdate, dict, dict | None]:
    """Worker entry point: run one round against shared-memory state.

    The job descriptor carries only names/layouts/RNG state; the template,
    weights and the shard are read from the attached segments. Returns the
    update, the advanced client RNG state, and this job's metric-counter
    shard delta (see :mod:`repro.obs.metrics`).
    """
    job = pickle.loads(job_blob)
    # Pin this job's segments against the cache LRU (see _worker_segment):
    # the round reads its state/feature views after later attaches, which
    # could otherwise evict — and unmap — them mid-job.
    pins = _WORKER.setdefault("job_pins", set())
    pins.update(
        name
        for name in (
            job["state_name"], job["shard_name"], job.get("features_name")
        )
        if name
    )
    try:
        _job_preamble(job)
        return _shm_client_solve(job)
    finally:
        pins.clear()


def _shm_client_solve(job: dict) -> tuple[LocalUpdate, dict, dict | None]:
    model = _worker_model(job["template_name"], job["template_nbytes"])
    state_seg = _worker_segment(job["state_name"])
    global_state = _view_arrays(state_seg.buf, job["state_layout"])
    client_key = (job["template_name"], job["shard_name"], job["client_digest"])
    client = _WORKER["clients"].get(client_key)
    if client is None:
        client = pickle.loads(job["client_blob"])
        shard_seg = _worker_segment(job["shard_name"])
        shard = _view_arrays(shard_seg.buf, job["shard_layout"])
        # float64/int64 views pass through ArrayDataset without a copy.
        client.dataset = ArrayDataset(shard["x"], shard["y"])
        _WORKER["clients"][client_key] = client
    client.rng = np.random.default_rng(0)
    client.rng.bit_generator.state = job["rng_state"]
    features = None
    if job.get("features_name"):
        feature_seg = _worker_segment(job["features_name"])
        features = _view_arrays(feature_seg.buf, job["features_layout"])["f"]
    baseline = obs_metrics.shard_baseline()
    update = client.run_round(
        model, global_state, timing=job["timing"], features=features
    )
    # Counter shard: what this job added to the worker's module-level
    # metric groups (fused-solver counts, …), merged exactly into the
    # parent registry by _ShmHandle.result (None when nothing changed).
    return (
        update,
        client.rng.bit_generator.state,
        obs_metrics.shard_delta(baseline),
    )


def _shm_cohort_round(job_blob: bytes) -> tuple:
    """Worker entry point: one block-stacked cohort of client rounds.

    Reconstructs each member exactly like :func:`_shm_client_round`, then
    solves them together through a worker-cached
    :class:`~repro.nn.fused.CohortPlan`. Returns
    ``(theta_stack, stats, rng_states, metric_shard)``: on success
    ``theta_stack`` is the (clients × params) θ lane stack — consumed
    parent-side directly as flat slab lanes, never through per-key dicts —
    and ``stats[i] = (num_selected, num_local, mean_loss)``. When the plan
    declines late (``theta_stack`` None), ``stats`` instead carries the
    members' LocalUpdates from the exact per-client path.
    """
    job = pickle.loads(job_blob)
    # Pin every segment this job reads for its whole duration: a cohort
    # holds 1 + 2·members mappings live at once, which can exceed the
    # segment-cache cap — without the pins the LRU would unmap the state
    # segment mid-job while its θ views are still being gathered.
    pins = _WORKER.setdefault("job_pins", set())
    pins.add(job["state_name"])
    for member in job["members"]:
        pins.add(member["shard_name"])
        pins.add(member["features_name"])
    try:
        _job_preamble(job)
        return _shm_cohort_solve(job)
    finally:
        pins.clear()


def _shm_cohort_solve(job: dict) -> tuple:
    baseline = obs_metrics.shard_baseline()
    model = _worker_model(job["template_name"], job["template_nbytes"])
    state_seg = _worker_segment(job["state_name"])
    global_state = _view_arrays(state_seg.buf, job["state_layout"])
    clients = []
    features = []
    for member in job["members"]:
        client_key = (
            job["template_name"], member["shard_name"], member["client_digest"]
        )
        client = _WORKER["clients"].get(client_key)
        if client is None:
            client = pickle.loads(member["client_blob"])
            shard_seg = _worker_segment(member["shard_name"])
            shard = _view_arrays(shard_seg.buf, member["shard_layout"])
            client.dataset = ArrayDataset(shard["x"], shard["y"])
            _WORKER["clients"][client_key] = client
        client.rng = np.random.default_rng(0)
        client.rng.bit_generator.state = member["rng_state"]
        clients.append(client)
        feature_seg = _worker_segment(member["features_name"])
        features.append(
            _view_arrays(feature_seg.buf, member["features_layout"])["f"]
        )
    caches = _WORKER["cohort_plans"].setdefault(
        job["template_name"], {"probes": {}, "plans": {}}
    )
    shape = tuple(features[0].shape[1:])
    layout = fastpath.aligned_cohort_layout(
        model, shape, cache=caches["probes"]
    )
    solved = None
    if layout is not None:
        solved = fastpath.solve_cohort(
            clients, model, global_state, features, layout,
            plan_cache=caches["plans"],
        )
    if solved is None:
        updates = [
            client.run_round(
                model, global_state, timing=job["timing"], features=feats
            )
            for client, feats in zip(clients, features)
        ]
        return (
            None,
            updates,
            [client.rng.bit_generator.state for client in clients],
            obs_metrics.shard_delta(baseline),
        )
    theta_stack, mean_losses, num_selected, num_local = solved
    stats = [
        (num_selected, num_local, float(mean_losses[i]))
        for i in range(len(clients))
    ]
    return (
        theta_stack,
        stats,
        [client.rng.bit_generator.state for client in clients],
        obs_metrics.shard_delta(baseline),
    )


def _shm_eval_shard(job_blob: bytes) -> tuple[int, int, dict | None]:
    """Worker entry point: score one aligned test-set shard with current θ.

    Loads only the θ keys into the cached template replica (its ϕ is the
    template's — the frozen backbone never changes within a run), runs the
    head over the shard's cached features (or the full model over raw
    inputs when no frozen prefix exists) in batches that match the serial
    evaluation's chunk boundaries, and returns the exact integer correct
    count — the parent-side reduction ``Σcorrect / Σn`` is then bitwise
    equal to ``np.mean`` over the whole logits matrix.
    """
    job = pickle.loads(job_blob)
    # Same mid-job pinning as the round jobs: the eval-segment attach must
    # not LRU-evict the state segment whose θ views are read afterwards.
    pins = _WORKER.setdefault("job_pins", set())
    pins.update((job["state_name"], job["eval_name"]))
    try:
        _job_preamble(job)
        return _shm_eval_solve(job)
    finally:
        pins.clear()


def _shm_eval_solve(job: dict) -> tuple[int, int, dict | None]:
    baseline = obs_metrics.shard_baseline()
    model = _worker_model(job["template_name"], job["template_nbytes"])
    state_seg = _worker_segment(job["state_name"])
    state = _view_arrays(state_seg.buf, job["state_layout"])
    model.load_state_dict(
        {key: state[key] for key in job["theta_keys"]}, strict=False
    )
    eval_seg = _worker_segment(job["eval_name"])
    arrays = _view_arrays(eval_seg.buf, job["eval_layout"])
    labels = arrays["y"]
    inputs = arrays["f"] if "f" in arrays else arrays["x"]
    batch = int(job["batch_size"])
    from repro.fl.fastpath import STATS as fused_stats

    if "f" in arrays and job.get("fused", True):
        # Fused evaluation: head-only shards run through a worker-cached
        # FusedHeadPlan (keyed per template, like the feature segments the
        # plan consumes), so the per-job Python is dispatch plus the
        # argmax reduction. Bitwise identical to the module loop below —
        # the fused forward is the same kernel sequence (repro.nn.fused).
        from repro.fl.fastpath import bind_head

        cache = _WORKER["eval_plans"].setdefault(job["template_name"], {})
        bound = bind_head(model, inputs.shape[1:], cache, eval_mode=True)
        if bound is not None:
            fused_stats["fused_eval_shards"] += 1
            return (
                bound.correct_count(inputs, labels, batch),
                int(len(labels)),
                obs_metrics.shard_delta(baseline),
            )
    fused_stats["graph_eval_shards"] += 1
    forward = model.forward_head if "f" in arrays else model
    was_training = model.training
    model.eval()
    correct = 0
    for i in range(0, len(labels), batch):
        preds = np.argmax(forward(inputs[i : i + batch]), axis=-1)
        correct += int(np.count_nonzero(preds == labels[i : i + batch]))
    if was_training:
        model.train()
    return correct, int(len(labels)), obs_metrics.shard_delta(baseline)


@dataclass
class _StateSlot:
    """One shared-memory segment holding a published version of the weights.

    ``refs`` counts in-flight jobs reading from the slot; the buffer is only
    rewritten with a newer version once every reader has been collected, so
    a job dispatched from an old version keeps seeing that version's bytes.
    ``state`` pins the exact dict object published, making the identity
    check in ``_publish_state`` safe against id reuse.
    """

    shm: shared_memory.SharedMemory
    nbytes: int
    layout: dict = field(default_factory=dict)
    refs: int = 0
    state: dict | None = None
    #: slab publication stamps: the θ SlabLayout signature and the ϕ array
    #: identities last written into this buffer. When a successor version
    #: matches both, only the θ block needs rewriting (one memcpy) — the ϕ
    #: bytes are already resident. ``state`` pins the stamped arrays, so
    #: the ids cannot be recycled while the stamp is consulted.
    slab_signature: object = None
    phi_stamp: tuple = ()


@dataclass
class _ShardRecord:
    """Parent-side registration of one client's shard segment.

    ``pool_key`` is set when the segment belongs to a campaign pool (the
    backend then holds a reference instead of owning the segment);
    ``digest`` fingerprints the dataset-free client descriptor so workers
    cache one rebuilt client per (template, shard, descriptor).
    """

    shm: shared_memory.SharedMemory
    layout: dict
    client_blob: bytes
    client: Client  # pins the client object so the id() key stays valid
    digest: str
    pool_key: object | None = None


@dataclass
class _SegmentRef:
    """A published auxiliary segment: cached features or an eval shard.

    ``pool_key`` is set when the campaign pool owns the segment (the
    backend then holds one reference for the run); otherwise the backend
    owns — and unlinks — it.
    """

    shm: shared_memory.SharedMemory
    layout: dict
    pool_key: object | None = None


@dataclass
class _TemplateRecord:
    """One model template published into shared memory for the workers.

    ``refs`` counts in-flight jobs dispatched against the template; a
    superseded template's segment is only unlinked once every such job has
    been collected (workers read the segment lazily on their first job).
    """

    shm: shared_memory.SharedMemory
    nbytes: int
    template: SegmentedModel  # pins the object so the id() key stays valid
    refs: int = 0


class _JobRecord:
    """One dispatched job's redispatch state.

    Holds the job *dict* (re-pickled per attempt: the injected
    ``chaos_delay`` only ships on the first dispatch) plus everything the
    retry loop needs — the live future, the attempt count, the watchdog's
    timeout mark, and the fingerprints of the data segments the job
    reads. Redispatch is bitwise-safe because the dict carries the
    dispatch-time RNG state and only segment *names*: a retried job reads
    the same published bytes and draws the same stream.
    """

    __slots__ = (
        "entry", "job", "index", "fingerprints", "future", "attempts",
        "timed_out",
    )

    def __init__(self, entry, job: dict, index: int, fingerprints):
        self.entry = entry
        self.job = job
        self.index = index
        self.fingerprints = fingerprints
        self.future: Future | None = None
        self.attempts = 0
        self.timed_out = False


class _Watchdog:
    """Deadline enforcement for in-flight process jobs.

    A daemon thread scans the watched records; an expired one is marked
    timed out and every worker process is killed, so the scheduler's
    blocked ``result()`` raises ``BrokenProcessPool`` promptly and the
    retry loop takes over. Killing the whole pool is deliberately coarse
    — ``concurrent.futures`` has no per-job cancel once a job runs — and
    safe: every other in-flight job is redispatched bitwise-exactly by
    the same machinery.
    """

    def __init__(self, backend: "ProcessPoolBackend", interval: float = 0.02):
        self._backend = backend
        self._interval = interval
        self._deadlines: dict[_JobRecord, float] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def watch(self, record: _JobRecord, seconds: float) -> None:
        with self._lock:
            self._deadlines[record] = time.monotonic() + seconds
            if self._thread is None:
                self._stop.clear()
                self._thread = threading.Thread(
                    target=self._run, name="repro-watchdog", daemon=True
                )
                self._thread.start()

    def unwatch(self, record: _JobRecord) -> None:
        with self._lock:
            self._deadlines.pop(record, None)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            now = time.monotonic()
            with self._lock:
                expired = [
                    record
                    for record, deadline in self._deadlines.items()
                    if deadline <= now
                ]
                for record in expired:
                    del self._deadlines[record]
            for record in expired:
                if record.future is not None and record.future.done():
                    continue  # finished between the scan and now
                record.timed_out = True
                FAULTS["timeouts"] += 1
                self._backend._kill_workers()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        self._thread = None
        if thread is not None:
            thread.join(timeout=5.0)
        with self._lock:
            self._deadlines.clear()


def _run_all(steps) -> None:
    """Run every teardown step even if some raise; re-raise the first.

    The exception-safety idiom for ``end_run``/``shutdown``: a failing
    step (a broken executor, an already-unlinked segment) must not leave
    the later segments leaked under ``/dev/shm``.
    """
    error: BaseException | None = None
    for step in steps:
        try:
            step()
        except BaseException as exc:
            if error is None:
                error = exc
    if error is not None:
        raise error


class _ShmHandle:
    """Resolves a worker job, mirrors the RNG advance, releases refs.

    Collection goes through the backend's retry loop
    (:meth:`ProcessPoolBackend._collect`); the state-slot and template
    references are held until the job's *final* resolution, so retried
    dispatches keep reading pinned segment bytes.
    """

    __slots__ = ("_backend", "_record", "_client", "_slot", "_template")

    def __init__(
        self,
        backend: "ProcessPoolBackend",
        record: _JobRecord,
        client: Client,
        slot: _StateSlot,
        template: _TemplateRecord,
    ):
        self._backend = backend
        self._record = record
        self._client = client
        self._slot = slot
        self._template = template

    def result(self) -> LocalUpdate:
        try:
            update, rng_state, metric_shard = self._backend._collect(
                self._record
            )
        finally:
            self._slot.refs -= 1
            self._template.refs -= 1
        self._client.rng.bit_generator.state = rng_state
        obs_metrics.merge_exported(metric_shard)
        return update


class _SharedCohortResult:
    """Parent-side resolution of one cohort job, shared by member handles.

    The first member collected resolves the worker future exactly once:
    releases the state-slot and template references (even when the worker
    raised — the error is cached and re-raised to every member), mirrors
    all members' RNG advances, merges the metric shard, and wraps the θ
    stack's lanes into slab-backed LocalUpdates. Later members read the
    cached updates.
    """

    __slots__ = (
        "_backend", "_record", "_clients", "_slot", "_template", "_layout",
        "_model", "_timing", "_updates", "_error",
    )

    def __init__(
        self, backend, record, clients, slot, template, layout, model, timing
    ):
        self._backend = backend
        self._record = record
        self._clients = clients
        self._slot = slot
        self._template = template
        self._layout = layout
        self._model = model
        self._timing = timing
        self._updates = None
        self._error = None

    def member(self, index: int) -> LocalUpdate:
        if self._updates is None and self._error is None:
            self._resolve()
        if self._error is not None:
            raise self._error
        return self._updates[index]

    def _resolve(self) -> None:
        try:
            stack, stats, rng_states, metric_shard = self._backend._collect(
                self._record
            )
        except BaseException as exc:  # re-raised to every member's result()
            self._error = exc
            return
        finally:
            self._slot.refs -= 1
            self._template.refs -= 1
        for client, rng_state in zip(self._clients, rng_states):
            client.rng.bit_generator.state = rng_state
        obs_metrics.merge_exported(metric_shard)
        if stack is None:
            # The worker's plan declined late and it ran the exact
            # per-member path instead: stats are ready LocalUpdates.
            self._updates = stats
            return
        updates = []
        for i, client in enumerate(self._clients):
            num_selected, num_local, mean_loss = stats[i]
            update = fastpath.wrap_cohort_update(
                stack[i], self._layout, num_selected, num_local, mean_loss
            )
            if self._timing is not None:
                update.train_seconds = client.planned_round_seconds(
                    self._model, self._timing
                )
            updates.append(update)
        self._updates = updates


class _ShmCohortHandle:
    """One member's handle onto a shared cohort job result."""

    __slots__ = ("_shared", "_index")

    def __init__(self, shared: _SharedCohortResult, index: int):
        self._shared = shared
        self._index = index

    def result(self) -> LocalUpdate:
        return self._shared.member(self._index)


class ProcessPoolBackend(ExecutionBackend):
    """Long-lived worker processes over shared-memory weights and shards.

    The parent publishes the model template and each distinct broadcast
    state once into shared memory and each client's shard once into its own
    segment; workers attach lazily and cache the attachment plus the
    reconstructed client. A job descriptor is then a few kilobytes
    (segment names, layouts, the client's RNG state and the timing model),
    independent of model and shard size — the property
    ``benchmarks/bench_process_backend.py`` guards.

    Campaign scope: because templates travel through shared memory (not the
    pool initializer), a new run's different template never restarts the
    workers. With ``segment_pool`` (a
    :class:`~repro.engine.campaign.CampaignSegmentPool`) shards of clients
    carrying a ``shard_key`` are published into — and reused from — the
    campaign-wide pool; with ``persistent=True``, ``close()`` becomes the
    end-of-run soft close (:meth:`end_run`): workers stay warm and pool
    segments stay published for the campaign's next run. Call
    :meth:`shutdown` (or close with ``persistent=False``, the default) for
    full teardown.

    ``start_method`` defaults to the :data:`START_METHOD_ENV` environment
    variable, falling back to the platform default context.

    Fault tolerance: with a ``fault_policy``, every dispatched job is a
    :class:`_JobRecord` whose exact blob can be resubmitted — dead workers
    (``BrokenProcessPool``), watchdog-expired deadlines and
    :class:`~repro.engine.faults.SegmentCorruption` reports all trigger a
    respawn-verify-backoff-redispatch cycle, and a job that exhausts
    ``max_retries`` completes *inline* (process → thread → serial) with
    identical bytes. A ``chaos`` plan injects seeded worker kills, job
    delays and segment corruptions at dispatch time; passing ``chaos``
    without a policy enables a default :class:`FaultPolicy` so injected
    faults are always recovered from.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
        segment_pool: "CampaignSegmentPool | None" = None,
        persistent: bool = False,
        feature_runtime: FeatureRuntime | None = None,
        fused_solver: bool = True,
        cohort_solver: bool = True,
        fault_policy: FaultPolicy | None = None,
        chaos: ChaosPlan | None = None,
    ):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self.start_method = start_method or os.environ.get(START_METHOD_ENV) or None
        self.segment_pool = segment_pool
        self.persistent = persistent
        #: whether pooled-evaluation workers may run their shards through
        #: the fused head plan (client rounds carry their own per-client
        #: ``fused_solver`` flag inside the pickled descriptor)
        self.fused_solver = fused_solver
        self.cohort_solver = cohort_solver
        #: frozen-feature policy: when set, client shards' ϕ(x) (and test
        #: sets for pooled evaluation) are materialised parent-side and
        #: published as segments; workers then run head-only rounds. The
        #: runtime's in-process array cache is not used here — shared
        #: memory is the cache — only its build counter and batch size.
        self.feature_runtime = feature_runtime
        self._executor: ProcessPoolExecutor | None = None
        self._slots: list[_StateSlot] = []
        self._current: _StateSlot | None = None
        self._shards: dict[int, _ShardRecord] = {}
        self._templates: dict[int, _TemplateRecord] = {}
        #: (client id(), ϕ fingerprint) -> feature segment; clients are
        #: pinned by their _ShardRecord, so the id stays valid run-long
        self._features: dict[tuple[int, str], "_SegmentRef"] = {}
        #: (test-set id(), fingerprint, batch, shards) -> (test set,
        #: segments); the dataset is pinned so the id cannot be recycled
        self._eval_segments: dict[tuple, tuple] = {}
        self._inflight: set[Future] = set()
        self._inflight_lock = threading.Lock()
        #: injected chaos implies a policy: every injected fault must be
        #: recovered from, or the run would (deliberately) diverge.
        if chaos is not None and fault_policy is None:
            fault_policy = FaultPolicy()
        self.fault_policy = fault_policy
        self.chaos = chaos
        #: global dispatch index for chaos addressing — counts every job
        #: blob (per-client, cohort-chunk and eval-shard) in submit order
        self._job_index = 0
        #: segment name -> (shm, nbytes, fingerprint, repair) for this
        #: run's data segments; fingerprints are only computed when the
        #: policy verifies, repair closures republish the exact bytes
        self._segment_meta: dict[str, tuple] = {}
        self._watchdog: _Watchdog | None = None
        self.stats = CounterGroup(
            "backend.process",
            {
                "jobs": 0,
                "cohort_jobs": 0,
                "state_publishes": 0,
                "state_slab_memcpys": 0,
                "state_segments": 0,
                "shard_segments": 0,
                "template_publishes": 0,
                "job_payload_bytes": 0,
                "max_job_payload_bytes": 0,
                "feature_segments": 0,
                "eval_segments": 0,
                "pooled_evals": 0,
            },
        )
        register_emergency_cleanup(self)

    # -- worker pool --------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._executor is not None:
            return
        context = get_context(self.start_method) if self.start_method else None
        self._executor = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=context,
            initializer=_shm_worker_init,
        )

    # -- fault layer ---------------------------------------------------------
    def _kill_workers(self) -> None:
        """Kill every live worker (watchdog / drain escalation path)."""
        executor = self._executor
        if executor is None:
            return
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:  # already gone
                pass

    def _respawn_if_broken(self) -> None:
        """Replace a broken executor with a fresh worker pool."""
        executor = self._executor
        if executor is None:
            self._ensure_started()
            return
        if not getattr(executor, "_broken", False):
            return
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - best effort
            pass
        self._executor = None
        self._ensure_started()
        FAULTS["respawns"] += 1

    def _register_segment_meta(
        self, shm: shared_memory.SharedMemory, nbytes: int, repair
    ) -> None:
        """Track a published data segment for verification and repair."""
        if self.fault_policy is None:
            return
        digest = (
            segment_fingerprint(shm.buf, nbytes)
            if self.fault_policy.verify_segments
            else None
        )
        self._segment_meta[shm.name] = (shm, nbytes, digest, repair)

    def _job_fingerprints(self, names) -> dict | None:
        """``{segment name: (nbytes, digest)}`` for a job's data segments."""
        policy = self.fault_policy
        if policy is None or not policy.verify_segments:
            return None
        out = {}
        for name in names:
            meta = self._segment_meta.get(name) if name else None
            if meta is not None and meta[2] is not None:
                out[name] = (meta[1], meta[2])
        return out or None

    def _repair_segment(self, name: str) -> None:
        """Republish a corrupted segment's exact bytes from its source."""
        meta = self._segment_meta.get(name)
        if meta is not None:
            meta[3]()

    def _verify_job_segments(self, record: _JobRecord) -> None:
        """Parent-side re-verify of a failed job's segments before retry."""
        for name, (nbytes, digest) in (record.fingerprints or {}).items():
            meta = self._segment_meta.get(name)
            if meta is None:
                continue
            if segment_fingerprint(meta[0].buf, nbytes) != digest:
                FAULTS["corrupt_segments"] += 1
                self._repair_segment(name)

    def _chaos_corrupt(self, job: dict) -> None:
        """Flip one seeded byte of the job's feature — else shard — segment."""
        members = job.get("members")
        first = members[0] if members else job
        name = (
            first.get("features_name")
            or first.get("shard_name")
            or job.get("eval_name")
        )
        meta = self._segment_meta.get(name) if name else None
        if meta is None:
            return
        shm, nbytes = meta[0], meta[1]
        offset = self.chaos.corrupt_offset(nbytes)
        shm.buf[offset] = shm.buf[offset] ^ 0xFF
        FAULTS["chaos_corruptions"] += 1

    def _chaos_kill_worker(self) -> None:
        """Kill one worker process (the chaos plan's ``kill`` event)."""
        executor = self._executor
        if executor is None:
            return
        procs = list(getattr(executor, "_processes", {}).values())
        if procs:
            try:
                procs[0].kill()
            except Exception:  # pragma: no cover - already gone
                pass
            FAULTS["chaos_kills"] += 1

    def _dispatch(self, entry, job: dict, fingerprints=None) -> _JobRecord:
        """Apply this job's scheduled chaos, then submit it to the pool."""
        index = self._job_index
        self._job_index += 1
        if fingerprints:
            job["fingerprints"] = fingerprints
        kill = False
        chaos = self.chaos
        if chaos is not None:
            delay = chaos.delay_for(index)
            if delay:
                job["chaos_delay"] = delay
                FAULTS["chaos_delays"] += 1
            if chaos.corrupt_before(index):
                self._chaos_corrupt(job)
            kill = chaos.kill_before(index)
        record = _JobRecord(entry, job, index, fingerprints)
        self._submit_job(record)
        if kill:
            # After the submit so the executor has spawned its processes
            # (they start lazily); the dead worker surfaces as
            # BrokenProcessPool on whichever futures it takes down.
            self._chaos_kill_worker()
        return record

    def _submit_job(self, record: _JobRecord) -> None:
        """(Re)submit a job record's exact blob; arm the watchdog."""
        job = record.job
        if record.attempts > 0 and "chaos_delay" in job:
            # A chaos delay fires once, on the first dispatch — the retry
            # of a deadline-killed job must not stall again.
            job = {k: v for k, v in job.items() if k != "chaos_delay"}
        blob = pickle.dumps(job)
        self.stats["job_payload_bytes"] += len(blob)
        self.stats["max_job_payload_bytes"] = max(
            self.stats["max_job_payload_bytes"], len(blob)
        )
        self._ensure_started()
        try:
            future = self._executor.submit(record.entry, blob)
        except BrokenExecutor:
            # The pool broke *between* jobs (a worker died idle). Without
            # a policy that is fatal, as before; with one, respawn and
            # dispatch to the fresh pool.
            if self.fault_policy is None:
                raise
            self._respawn_if_broken()
            future = self._executor.submit(record.entry, blob)
        record.future = future
        with self._inflight_lock:
            self._inflight.add(future)
        future.add_done_callback(self._inflight_done)
        policy = self.fault_policy
        if policy is not None and policy.job_deadline is not None:
            if self._watchdog is None:
                self._watchdog = _Watchdog(self)
            watchdog = self._watchdog
            watchdog.watch(record, policy.job_deadline)
            future.add_done_callback(
                lambda _f, r=record: watchdog.unwatch(r)
            )

    def _retryable(self, exc: BaseException, record: _JobRecord) -> bool:
        """Classify a job failure; count and repair what the retry needs."""
        if isinstance(exc, SegmentCorruption):
            FAULTS["corrupt_segments"] += 1
            self._repair_segment(exc.name)
            return True
        if record.timed_out:
            return True
        # BrokenProcessPool (a subclass of BrokenExecutor) is the dead-
        # worker signal; OSError/EOFError cover torn result pipes.
        return isinstance(exc, (BrokenExecutor, OSError, EOFError))

    def _collect(self, record: _JobRecord):
        """Resolve a job, retrying/degrading per the fault policy.

        The fast path — no policy — is a plain ``future.result()``. With
        a policy, a retryable failure (dead worker, timeout, corruption)
        respawns the pool, re-verifies the job's segments, waits a seeded
        backoff and redispatches the exact blob; after ``max_retries``
        consecutive failures the job completes inline
        (:meth:`_run_degraded`), bitwise identically.
        """
        policy = self.fault_policy
        if policy is None:
            return record.future.result()
        while True:
            try:
                return record.future.result()
            except BaseException as exc:
                if not self._retryable(exc, record):
                    raise
            record.attempts += 1
            record.timed_out = False
            self._respawn_if_broken()
            if policy.verify_segments:
                self._verify_job_segments(record)
            if record.attempts > policy.max_retries:
                return self._run_degraded(record)
            FAULTS["retries"] += 1
            delay = policy.backoff_delay(record.attempts)
            if delay > 0:
                with tracing.span("faults.backoff"):
                    time.sleep(delay)
            self._submit_job(record)

    def _run_degraded(self, record: _JobRecord):
        """Complete a job inline after its retry budget is exhausted.

        The degradation ladder: the job's exact blob first runs on a
        private worker thread (process → thread); if that fails too it
        runs serially on the scheduler thread (thread → serial). Either
        way the result is bitwise identical to a worker execution — the
        blob carries the dispatch-time RNG state and reads the same
        published segments — just slower, and loudly annotated on
        ``faults.degradations`` / ``solver.fused.degraded_jobs``.
        """
        FAULTS["degradations"] += 1
        fastpath.STATS["degraded_jobs"] += 1
        job = {
            key: value
            for key, value in record.job.items()
            if key != "chaos_delay"
        }
        blob = pickle.dumps(job)
        baseline = obs_metrics.shard_baseline()
        try:
            try:
                with ThreadPoolExecutor(max_workers=1) as fallback:
                    return fallback.submit(record.entry, blob).result()
            except Exception:
                return record.entry(blob)
        finally:
            # The inline run incremented this process's exported groups
            # directly *and* returns the usual metric shard (which the
            # handle merges); cancel the direct increments so counter
            # totals stay exactly equal to the all-worker run's.
            delta = obs_metrics.shard_delta(baseline)
            if delta:
                obs_metrics.merge_exported(
                    {name: -value for name, value in delta.items()}
                )

    def _ensure_template(self, template: SegmentedModel) -> _TemplateRecord:
        """Publish ``template`` into shared memory once per distinct object.

        Publishing a new template supersedes older ones: any with no jobs
        still in flight are unlinked immediately (one run's template is
        dead weight once the next run starts).
        """
        record = self._templates.get(id(template))
        if record is not None:
            return record
        blob = pickle.dumps(template)
        shm = shared_memory.SharedMemory(create=True, size=max(len(blob), 1))
        shm.buf[: len(blob)] = blob
        for tid, old in list(self._templates.items()):
            if old.refs == 0:
                unlink_segment(old.shm)
                del self._templates[tid]
        record = _TemplateRecord(shm=shm, nbytes=len(blob), template=template)
        self._templates[id(template)] = record
        self.stats["template_publishes"] += 1
        return record

    # -- shared-memory publication -------------------------------------------
    def _publish_state(self, global_state: dict[str, np.ndarray]) -> _StateSlot:
        """Acquire a slot holding ``global_state``; publish it if new.

        The training loops hand out one dict object per model version
        (aggregation always builds a fresh dict), so object identity with
        the most recently published state detects version reuse.
        """
        if self._current is not None and self._current.state is global_state:
            self._current.refs += 1
            return self._current
        slab_layout = getattr(global_state, "layout", None)
        if slab_layout is not None:
            layout, nbytes, theta_offset, phi_keys = _slab_wire_layout(
                global_state, slab_layout
            )
        else:
            layout, nbytes = _array_layout(global_state)
        slot = next(
            (s for s in self._slots if s.refs == 0 and s.nbytes >= nbytes), None
        )
        if slot is None:
            slot = _StateSlot(
                shm=shared_memory.SharedMemory(create=True, size=nbytes),
                nbytes=nbytes,
            )
            self._slots.append(slot)
            self.stats["state_segments"] = len(self._slots)
        if slab_layout is not None:
            # Successive model versions share ϕ by reference and differ
            # only in the θ slab: when this buffer already holds the same
            # ϕ objects' bytes under the same packing, the publish is one
            # memcpy of the slab.
            phi_stamp = tuple((key, id(global_state[key])) for key in phi_keys)
            if (
                slot.slab_signature != slab_layout.signature
                or slot.phi_stamp != phi_stamp
            ):
                for key in phi_keys:
                    offset, shape, dtype = layout[key]
                    view = np.ndarray(
                        shape, dtype=np.dtype(dtype), buffer=slot.shm.buf,
                        offset=offset,
                    )
                    view[...] = global_state[key]
                slot.slab_signature = slab_layout.signature
                slot.phi_stamp = phi_stamp
            else:
                self.stats["state_slab_memcpys"] += 1
            theta_block = np.ndarray(
                slab_layout.total, dtype=np.float64, buffer=slot.shm.buf,
                offset=theta_offset,
            )
            theta_block[...] = global_state.theta_slab
        else:
            _write_arrays(slot.shm.buf, layout, global_state)
            slot.slab_signature = None
            slot.phi_stamp = ()
        slot.layout = layout
        slot.state = global_state
        slot.refs += 1
        self._current = slot
        self.stats["state_publishes"] += 1
        return slot

    def _ensure_shard(self, client: Client) -> _ShardRecord:
        record = self._shards.get(id(client))
        if record is not None:
            return record
        # Ship everything about the client except the heavy shard and the
        # RNG (whose state travels per job); shallow copy keeps subclasses.
        clone = copy.copy(client)
        clone.dataset = None
        clone.rng = None
        client_blob = pickle.dumps(clone)
        digest = hashlib.blake2b(client_blob, digest_size=12).hexdigest()

        def shard_arrays() -> dict[str, np.ndarray]:
            x, y = client.dataset.arrays()
            return {
                "x": np.ascontiguousarray(x, dtype=np.float64),
                "y": np.ascontiguousarray(y, dtype=np.int64),
            }

        pool_key = getattr(client, "shard_key", None)
        if self.segment_pool is not None and pool_key is not None:
            segment = self.segment_pool.acquire(pool_key, shard_arrays)
            record = _ShardRecord(
                shm=segment.shm,
                layout=segment.layout,
                client_blob=client_blob,
                client=client,
                digest=digest,
                pool_key=pool_key,
            )
            self._register_segment_meta(
                segment.shm,
                segment.nbytes,
                lambda key=pool_key: self.segment_pool.repair(key),
            )
        else:
            arrays = shard_arrays()
            layout, nbytes = _array_layout(arrays)
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            _write_arrays(shm.buf, layout, arrays)
            record = _ShardRecord(
                shm=shm,
                layout=layout,
                client_blob=client_blob,
                client=client,
                digest=digest,
            )

            def repair(shm=shm, layout=layout):
                _write_arrays(shm.buf, layout, shard_arrays())
                FAULTS["segment_repairs"] += 1

            self._register_segment_meta(shm, nbytes, repair)
        self._shards[id(client)] = record
        self.stats["shard_segments"] = len(self._shards)
        return record

    def _publish_aux(
        self, pool_key, arrays_factory
    ) -> "_SegmentRef":
        """Publish an auxiliary array set: pooled when keyed, owned else."""
        if self.segment_pool is not None and pool_key is not None:
            segment = self.segment_pool.acquire(pool_key, arrays_factory)
            self._register_segment_meta(
                segment.shm,
                segment.nbytes,
                lambda key=pool_key: self.segment_pool.repair(key),
            )
            return _SegmentRef(
                shm=segment.shm, layout=segment.layout, pool_key=pool_key
            )
        arrays = arrays_factory()
        layout, nbytes = _array_layout(arrays)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        _write_arrays(shm.buf, layout, arrays)

        def repair(shm=shm, layout=layout):
            _write_arrays(shm.buf, layout, arrays_factory())
            FAULTS["segment_repairs"] += 1

        self._register_segment_meta(shm, nbytes, repair)
        return _SegmentRef(shm=shm, layout=layout)

    def _ensure_features(
        self, client, template: SegmentedModel, chain=None
    ) -> "_SegmentRef | None":
        """The client's ϕ(shard) feature segment, built/published on first use.

        With a campaign pool and a ``shard_key``'d client, the segment is
        keyed by (shard identity, ϕ fingerprint) and survives across runs
        — published once per campaign. Returns None when caching is off,
        the client opts out, or the template has no frozen prefix.

        The fingerprint is recomputed per call — never served from the
        parent-side memo — mirroring
        :meth:`~repro.fl.features.FeatureRuntime.features_for`: the hash
        *is* the invalidation mechanism, so a ϕ mutated mid-run (or a new
        template object reusing a freed id) can never be handed stale
        features. ``chain`` is the one sanctioned shortcut: a single
        dispatch wave (``submit_many``) probes the chain once and shares
        it — ϕ cannot mutate between two lookups of the same wave.
        """
        if self.feature_runtime is None or not getattr(
            client, "supports_feature_cache", True
        ):
            return None
        if chain is None:
            chain = template.phi_prefix_chain()
        if not chain:
            return None
        fingerprint = chain[-1]
        cache_key = (id(client), fingerprint)
        record = self._features.get(cache_key)
        if record is not None:
            return record
        shard_key = getattr(client, "shard_key", None)
        pool_key = (
            feature_pool_key(shard_key, fingerprint)
            if shard_key is not None
            else None
        )

        def base_features(prefix_fp: str) -> np.ndarray | None:
            """This shard's features at a shallower split, as a segment
            view: this run's registrations first, then the campaign pool —
            cross-run derivation (run N at a deeper split seeds from run
            M's pooled segment, which ``end_run`` keeps resident precisely
            for reuse like this)."""
            record = self._features.get((id(client), prefix_fp))
            if record is None and self.segment_pool is not None and (
                shard_key is not None
            ):
                record = self.segment_pool.peek(
                    feature_pool_key(shard_key, prefix_fp)
                )
            if record is None:
                return None
            return _view_arrays(record.shm.buf, record.layout)["f"]

        def feature_arrays() -> dict[str, np.ndarray]:
            # Prefix-chain keying: a segment already published for this
            # shard under a shallower split of the same frozen weights
            # seeds the build (FeatureRuntime.materialise owns the
            # derivation-precedence rule — one implementation for the
            # in-process cache and the shared-memory path alike).
            return {
                "f": self.feature_runtime.materialise(
                    template, chain, base_features,
                    lambda: client.dataset.arrays()[0],
                )
            }

        record = self._publish_aux(pool_key, feature_arrays)
        self._features[cache_key] = record
        self.stats["feature_segments"] = len(self._features)
        return record

    # -- ExecutionBackend interface ------------------------------------------
    def submit(self, client, template, global_state, timing):
        self._ensure_started()
        template_record = self._ensure_template(template)
        slot = self._publish_state(global_state)
        shard = self._ensure_shard(client)
        features = self._ensure_features(client, template)
        job = {
            "template_name": template_record.shm.name,
            "template_nbytes": template_record.nbytes,
            "state_name": slot.shm.name,
            "state_layout": slot.layout,
            "shard_name": shard.shm.name,
            "shard_layout": shard.layout,
            "client_blob": shard.client_blob,
            "client_digest": shard.digest,
            "features_name": features.shm.name if features else None,
            "features_layout": features.layout if features else None,
            "rng_state": client.rng.bit_generator.state,
            "timing": timing,
        }
        self.stats["jobs"] += 1
        template_record.refs += 1
        record = self._dispatch(
            _shm_client_round,
            job,
            self._job_fingerprints(
                (shard.shm.name, features.shm.name if features else None)
            ),
        )
        return _ShmHandle(self, record, client, slot, template_record)

    def submit_many(self, clients, template, global_state, timing):
        if (
            len(clients) < 2
            or not self.cohort_solver
            or self.feature_runtime is None
            or type(self).submit is not ProcessPoolBackend.submit
        ):
            return super().submit_many(clients, template, global_state, timing)
        self._ensure_started()
        chain = template.phi_prefix_chain()
        features = [
            self._ensure_features(client, template, chain=chain)
            for client in clients
        ]
        shapes = [
            None if record is None else tuple(record.layout["f"][1][1:])
            for record in features
        ]
        units = fastpath.cohort_units(clients, template, global_state, shapes)
        handles: list = [None] * len(clients)
        if units:
            template_record = self._ensure_template(template)
        chunks = [
            (chunk, layout)
            for positions, layout in units or ()
            for chunk in _cohort_chunks(positions)
        ]
        for positions, layout in chunks:
            members = [clients[i] for i in positions]
            slot = self._publish_state(global_state)
            member_blobs = []
            for i, client in zip(positions, members):
                shard = self._ensure_shard(client)
                record = features[i]
                member_blobs.append(
                    {
                        "shard_name": shard.shm.name,
                        "shard_layout": shard.layout,
                        "client_blob": shard.client_blob,
                        "client_digest": shard.digest,
                        "features_name": record.shm.name,
                        "features_layout": record.layout,
                        "rng_state": client.rng.bit_generator.state,
                    }
                )
            # One blob per cohort: segment names and per-member RNG states;
            # features/shards/θ all travel through the published segments.
            job = {
                "template_name": template_record.shm.name,
                "template_nbytes": template_record.nbytes,
                "state_name": slot.shm.name,
                "state_layout": slot.layout,
                "members": member_blobs,
                "timing": timing,
            }
            self.stats["jobs"] += 1
            self.stats["cohort_jobs"] += 1
            template_record.refs += 1
            fingerprints = self._job_fingerprints(
                [name for member in member_blobs for name in (
                    member["shard_name"], member["features_name"]
                )]
            )
            job_record = self._dispatch(_shm_cohort_round, job, fingerprints)
            shared = _SharedCohortResult(
                self, job_record, members, slot, template_record, layout,
                template, timing,
            )
            for index, pos in enumerate(positions):
                handles[pos] = _ShmCohortHandle(shared, index)
        for i, client in enumerate(clients):
            if handles[i] is None:
                handles[i] = self.submit(client, template, global_state, timing)
        return handles

    def _inflight_done(self, future: Future) -> None:
        with self._inflight_lock:
            self._inflight.discard(future)

    def _drain_inflight(self) -> None:
        """Block until no submitted job is still executing.

        Close can arrive with jobs in flight (an exception propagating out
        of a run's ``with backend:`` block); segments must not be
        recycled or unlinked while a worker may still read them. With a
        fault-policy deadline the wait is bounded: a job hung past its
        deadline gets the workers killed rather than blocking teardown.
        """
        with self._inflight_lock:
            pending = list(self._inflight)
        if not pending:
            return
        policy = self.fault_policy
        if policy is not None and policy.job_deadline is not None:
            _, not_done = futures_wait(
                pending, timeout=policy.job_deadline + 1.0
            )
            if not_done:
                self._kill_workers()
                futures_wait(not_done, timeout=5.0)
            return
        futures_wait(pending)

    # -- pooled evaluation ---------------------------------------------------
    def _ensure_eval_segments(
        self,
        model: SegmentedModel,
        test_set: Dataset,
        test_key: tuple | None,
        batch_size: int,
    ) -> list:
        """Publish the test set as contiguous shards aligned to ``batch_size``.

        Alignment makes every shard's batch compositions identical to the
        serial evaluation's global chunking, so per-shard logits — and the
        integer correct counts — are bitwise exact regardless of sharding.
        With a frozen prefix the shards carry cached ϕ(x) features; without
        one they carry the raw inputs (pooled evaluation still parallelises
        the full forward). Pool-keyed segments (``test_key`` set) are
        published once per campaign.
        """
        fingerprint = (
            model.phi_fingerprint() if self.feature_runtime is not None else None
        )
        n = len(test_set)
        total_batches = -(-n // batch_size)
        num_shards = max(1, min(self.max_workers, total_batches))
        cache_key = (id(test_set), fingerprint, batch_size, num_shards)
        cached = self._eval_segments.get(cache_key)
        if cached is not None:
            return cached[1]
        x, y = test_set.arrays()
        built: dict[str, np.ndarray] = {}

        def shard_arrays(lo: int, hi: int) -> dict[str, np.ndarray]:
            if fingerprint is not None:
                if "f" not in built:
                    built["f"] = self.feature_runtime.build(model, x)
                return {"f": built["f"][lo:hi], "y": y[lo:hi]}
            return {
                "x": np.ascontiguousarray(x[lo:hi], dtype=np.float64),
                "y": y[lo:hi],
            }

        base, extra = divmod(total_batches, num_shards)
        records = []
        lo = 0
        for index in range(num_shards):
            span = (base + (1 if index < extra else 0)) * batch_size
            hi = min(n, lo + span)
            pool_key = (
                eval_pool_key(test_key, fingerprint, batch_size, num_shards, index)
                if test_key is not None
                else None
            )
            records.append(
                self._publish_aux(
                    pool_key, lambda lo=lo, hi=hi: shard_arrays(lo, hi)
                )
            )
            lo = hi
        # Pin the dataset alongside its segments: the id() in the key must
        # not be reusable by a different test set while the entry lives.
        self._eval_segments[cache_key] = (test_set, records)
        self.stats["eval_segments"] = sum(
            len(entry[1]) for entry in self._eval_segments.values()
        )
        return records

    def evaluate_pooled(
        self,
        model: SegmentedModel,
        global_state: dict[str, np.ndarray],
        test_set: Dataset,
        test_key: tuple | None = None,
        batch_size: int = 512,
    ) -> float:
        """Top-1 accuracy via sharded jobs on the warm workers.

        Bitwise equal to the serial ``Server.evaluate`` path: shards are
        batch-aligned, workers return exact integer correct counts, and the
        parent reduction divides the totals. Only θ crosses per evaluation
        (through the refcounted state slot — reused by training dispatches
        of the same model version); test-set segments are published once
        per campaign. The caller's workspace model is left untouched.
        """
        if len(test_set) == 0:
            return 0.0
        with tracing.span("eval.pooled"):
            return self._evaluate_pooled(
                model, global_state, test_set, test_key, batch_size
            )

    def _evaluate_pooled(
        self, model, global_state, test_set, test_key, batch_size
    ) -> float:
        self._ensure_started()
        template_record = self._ensure_template(model)
        segments = self._ensure_eval_segments(
            model, test_set, test_key, batch_size
        )
        slot = self._publish_state(global_state)
        keys = theta_keys(model)
        records = []
        template_record.refs += len(segments)
        correct = 0
        total = 0
        try:
            for record in segments:
                job = {
                    "template_name": template_record.shm.name,
                    "template_nbytes": template_record.nbytes,
                    "state_name": slot.shm.name,
                    "state_layout": slot.layout,
                    "eval_name": record.shm.name,
                    "eval_layout": record.layout,
                    "theta_keys": keys,
                    "batch_size": batch_size,
                    "fused": self.fused_solver,
                }
                records.append(
                    self._dispatch(
                        _shm_eval_shard,
                        job,
                        self._job_fingerprints((record.shm.name,)),
                    )
                )
            # Collect in submit order; references stay held until every
            # shard — including any redispatched one — has resolved.
            for job_record in records:
                shard_correct, shard_total, metric_shard = self._collect(
                    job_record
                )
                correct += shard_correct
                total += shard_total
                obs_metrics.merge_exported(metric_shard)
        finally:
            slot.refs -= 1
            template_record.refs -= len(segments)
        self.stats["pooled_evals"] += 1
        return correct / total

    def _release_shards(self) -> None:
        """Release pool references and unlink backend-owned shard segments."""
        for record in self._shards.values():
            if record.pool_key is not None:
                if self.segment_pool is not None:
                    self.segment_pool.release(record.pool_key)
            else:
                unlink_segment(record.shm)
        self._shards = {}

    def _release_aux_segments(self) -> None:
        """Release feature and eval segments (pool refs or owned unlinks)."""
        aux = list(self._features.values())
        for _, records in self._eval_segments.values():
            aux.extend(records)
        for record in aux:
            if record.pool_key is not None:
                if self.segment_pool is not None:
                    self.segment_pool.release(record.pool_key)
            else:
                unlink_segment(record.shm)
        self._features = {}
        self._eval_segments = {}

    def end_run(self) -> None:
        """Soft close between two runs of one campaign.

        Waits out any jobs still in flight (an aborted run's handles may
        never be collected), then drops everything tied to the finished
        run — shard registrations (pool refs released, own segments
        unlinked), feature/eval segments likewise, the current-state pin,
        state-slot reader counts and all template segments — while keeping
        the workers, the recycled state slots and the pool's shard and
        feature/test segments warm for the next run.

        Idempotent and exception-safe: every teardown step runs even when
        an earlier one raises (the chaos tests close after crashes), and a
        second call finds only empty registries.
        """
        _run_all(
            (
                self._drain_inflight,
                self._release_shards,
                self._release_aux_segments,
                self._reset_run_state,
            )
        )

    def _reset_run_state(self) -> None:
        self._current = None
        self._segment_meta = {}
        # With nothing executing, abandoned handles can no longer protect
        # their reads: every slot is reusable and every template is dead
        # (the next run brings its own template object).
        for slot in self._slots:
            slot.refs = 0
            slot.state = None
        templates, self._templates = self._templates, {}
        for record in templates.values():
            unlink_segment(record.shm)

    def close(self):
        """Per-run close: full teardown, or :meth:`end_run` when persistent."""
        if self.persistent:
            self.end_run()
            return
        self.shutdown()

    def shutdown(self) -> None:
        """Full teardown: stop the workers and unlink every owned segment.

        Idempotent and exception-safe like :meth:`end_run`: each step runs
        regardless of earlier failures (a broken executor after a chaos
        kill must not leak ``/dev/shm`` segments), and repeated calls are
        no-ops.
        """
        _run_all(
            (
                self._drain_inflight,
                self._stop_watchdog,
                self._shutdown_executor,
                self._unlink_slots,
                self._release_shards,
                self._release_aux_segments,
                self._reset_run_state,
                lambda: unregister_emergency_cleanup(self),
            )
        )

    def _stop_watchdog(self) -> None:
        watchdog, self._watchdog = self._watchdog, None
        if watchdog is not None:
            watchdog.stop()

    def _shutdown_executor(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def _unlink_slots(self) -> None:
        slots, self._slots = self._slots, []
        self._current = None
        for slot in slots:
            unlink_segment(slot.shm)

    def _emergency_cleanup(self) -> None:
        """Crash-path unlink (atexit/signal); idempotent, never raises.

        Only backend-owned segments are touched — pool segments belong to
        the :class:`~repro.engine.campaign.CampaignSegmentPool`, which
        registers its own cleanup. The executor is left alone: its workers
        die with the process, and joining them is not signal-safe.
        """
        for slot in self._slots:
            unlink_segment(slot.shm)
        self._slots = []
        self._current = None
        for record in list(self._shards.values()):
            if record.pool_key is None:
                unlink_segment(record.shm)
        self._shards = {}
        aux = list(self._features.values())
        for _, records in self._eval_segments.values():
            aux.extend(records)
        for record in aux:
            if record.pool_key is None:
                unlink_segment(record.shm)
        self._features = {}
        self._eval_segments = {}
        for record in self._templates.values():
            unlink_segment(record.shm)
        self._templates = {}


class PooledEvaluator:
    """Attachable ``Server.evaluator`` backed by the warm process pool.

    Campaign runtimes construct one per run and assign it to
    ``server.evaluator``; :meth:`~repro.fl.server.Server.evaluate` then
    delegates here instead of re-running the backbone serially. With a
    campaign pool and a stable ``test_key`` the test-set segments are
    published once per campaign, not once per run.
    """

    def __init__(
        self,
        backend: ProcessPoolBackend,
        test_set: Dataset,
        test_key: tuple | None = None,
        batch_size: int = 512,
    ):
        if not isinstance(backend, ProcessPoolBackend):
            raise TypeError("PooledEvaluator requires a ProcessPoolBackend")
        self.backend = backend
        self.test_set = test_set
        self.test_key = test_key
        self.batch_size = batch_size

    def evaluate(
        self,
        model: SegmentedModel,
        global_state: dict[str, np.ndarray],
        batch_size: int | None = None,
    ) -> float:
        # The evaluator's configured batch size governs shard geometry
        # (it is part of the campaign-pool key, so it must stay stable
        # across a campaign); the caller's per-call hint is ignored.
        # Row-determinism makes the result bitwise independent of the
        # choice anyway (see repro.fl.features).
        del batch_size
        return self.backend.evaluate_pooled(
            model,
            global_state,
            self.test_set,
            test_key=self.test_key,
            batch_size=self.batch_size,
        )


class LazyPooledEvaluator:
    """A :class:`PooledEvaluator` whose process backend spins up on first use.

    Serves the *synchronous serial* path: a serial campaign has no warm
    worker pool, but its evaluations (the full test set, every round) are
    exactly the embarrassingly parallel work the pooled evaluator shards.
    The factory — typically ``ExperimentHarness.make_run_backend("process")``
    — is only invoked when an evaluation actually happens, so attaching
    this costs nothing until then, and the spun-up backend joins the
    campaign runtime (the campaign, not this evaluator, owns its
    teardown). Results are bitwise identical to the serial evaluation by
    the pooled reduction's exactness.
    """

    def __init__(
        self,
        backend_factory,
        test_set: Dataset,
        test_key: tuple | None = None,
        batch_size: int = 512,
    ):
        self.backend_factory = backend_factory
        self.test_set = test_set
        self.test_key = test_key
        self.batch_size = batch_size
        self._delegate: PooledEvaluator | None = None

    def evaluate(
        self,
        model: SegmentedModel,
        global_state: dict[str, np.ndarray],
        batch_size: int | None = None,
    ) -> float:
        if self._delegate is None:
            self._delegate = PooledEvaluator(
                self.backend_factory(),
                self.test_set,
                test_key=self.test_key,
                batch_size=self.batch_size,
            )
        return self._delegate.evaluate(model, global_state, batch_size)


# ---------------------------------------------------------------------------
# Pickling process backend (regression baseline)
# ---------------------------------------------------------------------------


def _process_client_round(
    client: Client,
    model: SegmentedModel,
    global_state: dict[str, np.ndarray],
    timing: TimingModel | None,
) -> tuple[LocalUpdate, dict]:
    """Worker-process entry point: run the round, return update + RNG state."""
    update = client.run_round(model, global_state, timing=timing)
    return update, client.rng.bit_generator.state


class _ProcessHandle:
    """Resolves a worker-process future and replays the client RNG advance."""

    __slots__ = ("_future", "_client")

    def __init__(self, future: Future, client: Client):
        self._future = future
        self._client = client

    def result(self) -> LocalUpdate:
        update, rng_state = self._future.result()
        # The worker advanced a pickled copy of the generator; mirror that
        # advance here so the parent's stream stays continuous.
        self._client.rng.bit_generator.state = rng_state
        return update


class PicklingProcessPoolBackend(ExecutionBackend):
    """Worker processes; each job ships client + model replica by pickle.

    Heavyweight per job (the client's shard and a model replica cross the
    process boundary every round). Superseded by the shared-memory
    :class:`ProcessPoolBackend`; retained as the baseline the benchmark
    regression test compares payload sizes and results against.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self._executor: ProcessPoolExecutor | None = None

    def _ensure_started(self) -> None:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)

    def submit(self, client, template, global_state, timing):
        self._ensure_started()
        future = self._executor.submit(
            _process_client_round, client, template, global_state, timing
        )
        return _ProcessHandle(future, client)

    def close(self):
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


#: Backend short names used by configuration surfaces.
BACKENDS = ("serial", "thread", "process")


def make_backend(
    name: str,
    max_workers: int | None = None,
    segment_pool: "CampaignSegmentPool | None" = None,
    persistent: bool = False,
    feature_runtime: FeatureRuntime | None = None,
    fused_solver: bool = True,
    cohort_solver: bool = True,
    fault_policy: FaultPolicy | None = None,
    chaos: ChaosPlan | None = None,
) -> ExecutionBackend:
    """Instantiate an execution backend by short name.

    ``segment_pool``/``persistent`` only apply to the process backend (see
    :class:`ProcessPoolBackend`); the serial and thread backends hold no
    cross-run state worth pooling. ``feature_runtime`` enables the
    frozen-feature cache on any backend (see :mod:`repro.fl.features`).
    ``fused_solver`` gates the fused plan in pooled-evaluation workers
    (client rounds carry their own per-client flag). ``cohort_solver``
    gates block-stacked cohort dispatch (``submit_many`` grouping) on
    every backend. ``fault_policy``/``chaos`` enable the fault layer
    (:mod:`repro.engine.faults`): full retry/watchdog/degradation on the
    process backend, delay injection and deadline observation on the
    thread backend, nothing on serial (inline execution cannot lose work).
    """
    if name == "serial":
        return SerialBackend(
            feature_runtime=feature_runtime, cohort_solver=cohort_solver
        )
    if name == "thread":
        return ThreadPoolBackend(
            max_workers=max_workers,
            feature_runtime=feature_runtime,
            cohort_solver=cohort_solver,
            fault_policy=fault_policy,
            chaos=chaos,
        )
    if name == "process":
        return ProcessPoolBackend(
            max_workers=max_workers,
            segment_pool=segment_pool,
            persistent=persistent,
            feature_runtime=feature_runtime,
            fused_solver=fused_solver,
            cohort_solver=cohort_solver,
            fault_policy=fault_policy,
            chaos=chaos,
        )
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
