"""Pluggable execution backends for client local training.

A backend answers one question: *where does a client's local round actually
run?* The simulation semantics (virtual time, event order, RNG streams) are
owned by the training loops; backends only move the numeric work, so every
backend must produce bitwise-identical results for the same dispatch
sequence:

- :class:`SerialBackend` — runs the round inline in the server's shared
  workspace model, exactly like the original sequential simulator.
- :class:`ThreadPoolBackend` — runs rounds in worker threads, each with its
  own deep-copied model replica. NumPy releases the GIL inside the heavy
  kernels, so local training genuinely overlaps.
- :class:`ProcessPoolBackend` — runs rounds in long-lived worker processes
  that read global weights and client shards from
  ``multiprocessing.shared_memory`` segments. Only a small job descriptor
  (segment names, layouts, RNG state) crosses the pipe per round, and only
  the round's θ update and advanced RNG state come back.
- :class:`PicklingProcessPoolBackend` — the naive process backend that
  ships a full model replica plus the client (with its shard) per job;
  kept as the regression baseline the shared-memory benchmark compares
  against.

Every client is in at most one in-flight job at a time (the schedulers
guarantee this), so per-client RNG streams advance in the same order under
every backend. Backends are driven by a single scheduler thread; they are
not thread-safe for concurrent ``submit``/``result`` callers.

See DESIGN.md ("Shared-memory process backend") for the segment layout and
worker lifecycle.
"""

from __future__ import annotations

import copy
import os
import pickle
import queue
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context, resource_tracker, shared_memory

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.fl.client import Client
from repro.fl.strategies import LocalUpdate
from repro.fl.timing import TimingModel
from repro.nn.segmented import SegmentedModel

#: environment override for the worker start method ("fork" | "spawn" |
#: "forkserver"); CI runs the determinism suite under spawn through this.
START_METHOD_ENV = "REPRO_PROCESS_START_METHOD"


class _Resolved:
    """A pre-computed result with a Future-compatible ``result()``."""

    __slots__ = ("_value",)

    def __init__(self, value):
        self._value = value

    def result(self):
        return self._value


class ExecutionBackend:
    """Interface: submit client rounds, collect their LocalUpdates."""

    def submit(
        self,
        client: Client,
        template: SegmentedModel,
        global_state: dict[str, np.ndarray],
        timing: TimingModel | None,
    ):
        """Start one client round; returns a handle for :meth:`result`."""
        raise NotImplementedError

    def result(self, handle) -> LocalUpdate:
        """Block until the handle's round is finished and return its update."""
        return handle.result()

    def map_round(
        self,
        clients: list[Client],
        template: SegmentedModel,
        global_state: dict[str, np.ndarray],
        timing: TimingModel | None,
    ) -> list[LocalUpdate]:
        """Run one synchronous round's participants, preserving input order."""
        handles = [
            self.submit(client, template, global_state, timing)
            for client in clients
        ]
        return [self.result(h) for h in handles]

    def close(self) -> None:
        """Release worker resources; the backend may not be reused after."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Inline execution in the shared workspace model (the seed behaviour)."""

    def submit(self, client, template, global_state, timing):
        return _Resolved(client.run_round(template, global_state, timing=timing))


class ThreadPoolBackend(ExecutionBackend):
    """Worker threads over a pool of deep-copied model replicas.

    Replicas are created eagerly on first submit (before any computation is
    in flight) and recycled through a queue, so a worker never trains in a
    model another worker — or the server's evaluation — is touching.
    ``run_round`` loads the broadcast state before every round, so replica
    contents never leak between clients.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._executor: ThreadPoolExecutor | None = None
        self._replicas: queue.Queue | None = None
        self._lock = threading.Lock()

    def _ensure_started(self, template: SegmentedModel) -> None:
        with self._lock:
            if self._executor is not None:
                return
            replicas: queue.Queue = queue.Queue()
            for _ in range(self.max_workers):
                replicas.put(copy.deepcopy(template))
            self._replicas = replicas
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-client",
            )

    def submit(self, client, template, global_state, timing):
        self._ensure_started(template)

        def job() -> LocalUpdate:
            model = self._replicas.get()
            try:
                return client.run_round(model, global_state, timing=timing)
            finally:
                self._replicas.put(model)

        return self._executor.submit(job)

    def close(self):
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
                self._replicas = None


# ---------------------------------------------------------------------------
# Shared-memory process backend
# ---------------------------------------------------------------------------

#: alignment of every array inside a segment (cache line / SIMD friendly)
_ALIGN = 64


def _array_layout(
    arrays: dict[str, np.ndarray]
) -> tuple[dict[str, tuple[int, tuple, str]], int]:
    """Plan the packed layout ``key -> (offset, shape, dtype.str)`` + size."""
    layout: dict[str, tuple[int, tuple, str]] = {}
    offset = 0
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        offset = -(-offset // _ALIGN) * _ALIGN
        layout[key] = (offset, tuple(arr.shape), arr.dtype.str)
        offset += arr.nbytes
    return layout, max(offset, 1)


def _write_arrays(buf, layout, arrays) -> None:
    for key, (offset, shape, dtype) in layout.items():
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        view[...] = arrays[key]


def _view_arrays(buf, layout) -> dict[str, np.ndarray]:
    return {
        key: np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        for key, (offset, shape, dtype) in layout.items()
    }


def _untracked_attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without resource-tracker custody.

    On POSIX Pythons before 3.13, merely *attaching* registers the segment
    with the resource tracker, which would unlink it when this worker exits
    — destroying a segment the parent still owns (and, under fork, racing
    the tracker the parent shares). The parent manages segment lifetime, so
    suppress the registration for the duration of the attach; the worker is
    single-threaded, so the swap cannot be observed concurrently.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


#: per-worker caches: the model replica shipped once at startup, attached
#: segments by name, and reconstructed clients by shard-segment name.
_WORKER: dict = {"model": None, "segments": {}, "clients": {}}


def _shm_worker_init(template_blob: bytes) -> None:
    """Worker startup: unpickle the model replica once, reset caches."""
    _WORKER["model"] = pickle.loads(template_blob)
    _WORKER["segments"] = {}
    _WORKER["clients"] = {}


def _worker_segment(name: str) -> shared_memory.SharedMemory:
    seg = _WORKER["segments"].get(name)
    if seg is None:
        seg = _untracked_attach(name)
        _WORKER["segments"][name] = seg
    return seg


def _shm_client_round(job_blob: bytes) -> tuple[LocalUpdate, dict]:
    """Worker entry point: run one round against shared-memory state.

    The job descriptor carries only names/layouts/RNG state; weights and
    the shard are read from the attached segments. Returns the update plus
    the advanced client RNG state, exactly like the pickling backend.
    """
    job = pickle.loads(job_blob)
    model = _WORKER["model"]
    state_seg = _worker_segment(job["state_name"])
    global_state = _view_arrays(state_seg.buf, job["state_layout"])
    client = _WORKER["clients"].get(job["shard_name"])
    if client is None:
        client = pickle.loads(job["client_blob"])
        shard_seg = _worker_segment(job["shard_name"])
        shard = _view_arrays(shard_seg.buf, job["shard_layout"])
        # float64/int64 views pass through ArrayDataset without a copy.
        client.dataset = ArrayDataset(shard["x"], shard["y"])
        _WORKER["clients"][job["shard_name"]] = client
    client.rng = np.random.default_rng(0)
    client.rng.bit_generator.state = job["rng_state"]
    update = client.run_round(model, global_state, timing=job["timing"])
    return update, client.rng.bit_generator.state


@dataclass
class _StateSlot:
    """One shared-memory segment holding a published version of the weights.

    ``refs`` counts in-flight jobs reading from the slot; the buffer is only
    rewritten with a newer version once every reader has been collected, so
    a job dispatched from an old version keeps seeing that version's bytes.
    ``state`` pins the exact dict object published, making the identity
    check in ``_publish_state`` safe against id reuse.
    """

    shm: shared_memory.SharedMemory
    nbytes: int
    layout: dict = field(default_factory=dict)
    refs: int = 0
    state: dict | None = None


@dataclass
class _ShardRecord:
    """Parent-side registration of one client's shard segment."""

    shm: shared_memory.SharedMemory
    layout: dict
    client_blob: bytes
    client: Client  # pins the client object so the id() key stays valid


class _ShmHandle:
    """Resolves a worker future, mirrors the RNG advance, releases the slot."""

    __slots__ = ("_future", "_client", "_slot")

    def __init__(self, future: Future, client: Client, slot: _StateSlot):
        self._future = future
        self._client = client
        self._slot = slot

    def result(self) -> LocalUpdate:
        try:
            update, rng_state = self._future.result()
        finally:
            self._slot.refs -= 1
        self._client.rng.bit_generator.state = rng_state
        return update


class ProcessPoolBackend(ExecutionBackend):
    """Long-lived worker processes over shared-memory weights and shards.

    The parent publishes each distinct broadcast state once into a
    refcounted shared-memory slot and each client's shard once into its own
    segment; workers attach lazily and cache the attachment plus the
    reconstructed client. A job descriptor is then a few kilobytes
    (segment names, layouts, the client's RNG state and the timing model),
    independent of model and shard size — the property
    ``benchmarks/bench_process_backend.py`` guards.

    ``start_method`` defaults to the :data:`START_METHOD_ENV` environment
    variable, falling back to the platform default context.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
    ):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self.start_method = start_method or os.environ.get(START_METHOD_ENV) or None
        self._executor: ProcessPoolExecutor | None = None
        self._template: SegmentedModel | None = None
        self._slots: list[_StateSlot] = []
        self._current: _StateSlot | None = None
        self._shards: dict[int, _ShardRecord] = {}
        self.stats = {
            "jobs": 0,
            "state_publishes": 0,
            "state_segments": 0,
            "shard_segments": 0,
            "job_payload_bytes": 0,
            "max_job_payload_bytes": 0,
        }

    # -- worker pool --------------------------------------------------------
    def _ensure_started(self, template: SegmentedModel) -> None:
        if self._executor is not None and template is self._template:
            return
        if self._executor is not None:
            # A different template means a different federation; restart the
            # pool so every worker replica matches (rare: once per run).
            self._executor.shutdown(wait=True)
        context = get_context(self.start_method) if self.start_method else None
        self._executor = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=context,
            initializer=_shm_worker_init,
            initargs=(pickle.dumps(template),),
        )
        self._template = template

    # -- shared-memory publication -------------------------------------------
    def _publish_state(self, global_state: dict[str, np.ndarray]) -> _StateSlot:
        """Acquire a slot holding ``global_state``; publish it if new.

        The training loops hand out one dict object per model version
        (aggregation always builds a fresh dict), so object identity with
        the most recently published state detects version reuse.
        """
        if self._current is not None and self._current.state is global_state:
            self._current.refs += 1
            return self._current
        layout, nbytes = _array_layout(global_state)
        slot = next(
            (s for s in self._slots if s.refs == 0 and s.nbytes >= nbytes), None
        )
        if slot is None:
            slot = _StateSlot(
                shm=shared_memory.SharedMemory(create=True, size=nbytes),
                nbytes=nbytes,
            )
            self._slots.append(slot)
            self.stats["state_segments"] = len(self._slots)
        _write_arrays(slot.shm.buf, layout, global_state)
        slot.layout = layout
        slot.state = global_state
        slot.refs += 1
        self._current = slot
        self.stats["state_publishes"] += 1
        return slot

    def _ensure_shard(self, client: Client) -> _ShardRecord:
        record = self._shards.get(id(client))
        if record is not None:
            return record
        x, y = client.dataset.arrays()
        arrays = {
            "x": np.ascontiguousarray(x, dtype=np.float64),
            "y": np.ascontiguousarray(y, dtype=np.int64),
        }
        layout, nbytes = _array_layout(arrays)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        _write_arrays(shm.buf, layout, arrays)
        # Ship everything about the client except the heavy shard and the
        # RNG (whose state travels per job); shallow copy keeps subclasses.
        clone = copy.copy(client)
        clone.dataset = None
        clone.rng = None
        record = _ShardRecord(
            shm=shm,
            layout=layout,
            client_blob=pickle.dumps(clone),
            client=client,
        )
        self._shards[id(client)] = record
        self.stats["shard_segments"] = len(self._shards)
        return record

    # -- ExecutionBackend interface ------------------------------------------
    def submit(self, client, template, global_state, timing):
        self._ensure_started(template)
        slot = self._publish_state(global_state)
        shard = self._ensure_shard(client)
        job_blob = pickle.dumps(
            {
                "state_name": slot.shm.name,
                "state_layout": slot.layout,
                "shard_name": shard.shm.name,
                "shard_layout": shard.layout,
                "client_blob": shard.client_blob,
                "rng_state": client.rng.bit_generator.state,
                "timing": timing,
            }
        )
        self.stats["jobs"] += 1
        self.stats["job_payload_bytes"] += len(job_blob)
        self.stats["max_job_payload_bytes"] = max(
            self.stats["max_job_payload_bytes"], len(job_blob)
        )
        future = self._executor.submit(_shm_client_round, job_blob)
        return _ShmHandle(future, client, slot)

    def close(self):
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for slot in self._slots:
            slot.shm.close()
            try:
                slot.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._slots = []
        self._current = None
        for record in self._shards.values():
            record.shm.close()
            try:
                record.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._shards = {}
        self._template = None


# ---------------------------------------------------------------------------
# Pickling process backend (regression baseline)
# ---------------------------------------------------------------------------


def _process_client_round(
    client: Client,
    model: SegmentedModel,
    global_state: dict[str, np.ndarray],
    timing: TimingModel | None,
) -> tuple[LocalUpdate, dict]:
    """Worker-process entry point: run the round, return update + RNG state."""
    update = client.run_round(model, global_state, timing=timing)
    return update, client.rng.bit_generator.state


class _ProcessHandle:
    """Resolves a worker-process future and replays the client RNG advance."""

    __slots__ = ("_future", "_client")

    def __init__(self, future: Future, client: Client):
        self._future = future
        self._client = client

    def result(self) -> LocalUpdate:
        update, rng_state = self._future.result()
        # The worker advanced a pickled copy of the generator; mirror that
        # advance here so the parent's stream stays continuous.
        self._client.rng.bit_generator.state = rng_state
        return update


class PicklingProcessPoolBackend(ExecutionBackend):
    """Worker processes; each job ships client + model replica by pickle.

    Heavyweight per job (the client's shard and a model replica cross the
    process boundary every round). Superseded by the shared-memory
    :class:`ProcessPoolBackend`; retained as the baseline the benchmark
    regression test compares payload sizes and results against.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self._executor: ProcessPoolExecutor | None = None

    def _ensure_started(self) -> None:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)

    def submit(self, client, template, global_state, timing):
        self._ensure_started()
        future = self._executor.submit(
            _process_client_round, client, template, global_state, timing
        )
        return _ProcessHandle(future, client)

    def close(self):
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


#: Backend short names used by configuration surfaces.
BACKENDS = ("serial", "thread", "process")


def make_backend(
    name: str, max_workers: int | None = None
) -> ExecutionBackend:
    """Instantiate an execution backend by short name."""
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadPoolBackend(max_workers=max_workers)
    if name == "process":
        return ProcessPoolBackend(max_workers=max_workers)
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
