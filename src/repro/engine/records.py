"""Event-level run history for the asynchronous engine.

Where the synchronous loop logs one :class:`~repro.fl.rounds.RoundRecord`
per lock-step round, the event-driven engine logs one :class:`EventRecord`
per processed client-completion event: an applied update (FedAsync), a
buffered update awaiting a FedBuff flush, or a mid-round dropout. The
:class:`EventLog` exposes the same summary surface as
:class:`~repro.fl.rounds.TrainingHistory` (``best_accuracy``,
``total_client_seconds``, threshold queries), so
:func:`repro.metrics.efficiency.learning_efficiency` works on both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Event kinds, in the order they can occur for one dispatch.
EVENT_KINDS = ("update", "buffer", "drop")


@dataclass(frozen=True)
class EventRecord:
    """Everything observed when one client-completion event is processed.

    ``virtual_time`` is the simulated wall-clock of the federation (the
    event scheduler's clock), while ``cumulative_client_seconds`` sums the
    *work* done across all clients — the same quantity the synchronous loop
    accumulates and the learning-efficiency metric divides by.
    """

    event_index: int
    kind: str  # "update" | "buffer" | "drop"
    virtual_time: float
    client_id: int
    #: aggregations applied between this client's dispatch and completion
    staleness: int
    #: global model version *after* this event was processed
    model_version: int
    test_accuracy: float
    #: True when ``test_accuracy`` comes from a fresh evaluation rather than
    #: carrying the last measured value forward
    evaluated: bool
    num_selected: int
    client_seconds: float
    cumulative_client_seconds: float
    mean_local_loss: float


@dataclass
class EventLog:
    """Event-by-event log of an asynchronous federated run.

    Mirrors :class:`~repro.fl.rounds.TrainingHistory`'s summary API so the
    efficiency metric and the threshold queries used by the straggler
    benchmarks apply unchanged.
    """

    records: list[EventRecord] = field(default_factory=list)

    def append(self, record: EventRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def accuracies(self) -> np.ndarray:
        return np.array([r.test_accuracy for r in self.records])

    @property
    def virtual_times(self) -> np.ndarray:
        return np.array([r.virtual_time for r in self.records])

    @property
    def best_accuracy(self) -> float:
        evaluated = [r.test_accuracy for r in self.records if r.evaluated]
        if not evaluated:
            return 0.0
        return float(max(evaluated))

    @property
    def final_accuracy(self) -> float:
        if not self.records:
            return 0.0
        return float(self.records[-1].test_accuracy)

    @property
    def total_client_seconds(self) -> float:
        if not self.records:
            return 0.0
        return float(self.records[-1].cumulative_client_seconds)

    @property
    def total_virtual_seconds(self) -> float:
        """Simulated federation wall-clock at the last processed event."""
        if not self.records:
            return 0.0
        return float(self.records[-1].virtual_time)

    @property
    def final_version(self) -> int:
        """Global model version after the last event (aggregations applied)."""
        if not self.records:
            return 0
        return self.records[-1].model_version

    def to_jsonl(self, path: str, append: bool = False) -> str:
        """Export the log as JSON Lines through the telemetry writer.

        One ``{"type": "event", ...record fields}`` row per event, so an
        async run's history is inspectable with the same tooling as
        ``telemetry.jsonl`` snapshots and span exports (until now it lived
        only in memory or inside checkpoint journals). Returns ``path``.
        """
        from dataclasses import asdict

        from repro.obs.report import write_jsonl

        return write_jsonl(
            path,
            ({"type": "event", **asdict(r)} for r in self.records),
            append=append,
        )

    def events_of_kind(self, kind: str) -> list[EventRecord]:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; expected {EVENT_KINDS}")
        return [r for r in self.records if r.kind == kind]

    def events_to_accuracy(self, target: float) -> int | None:
        """Index of the first *evaluated* event reaching ``target``, or None."""
        for record in self.records:
            if record.evaluated and record.test_accuracy >= target:
                return record.event_index
        return None

    def seconds_to_accuracy(self, target: float) -> float | None:
        """Cumulative client seconds when ``target`` is first measured."""
        for record in self.records:
            if record.evaluated and record.test_accuracy >= target:
                return record.cumulative_client_seconds
        return None

    def virtual_time_to_accuracy(self, target: float) -> float | None:
        """Simulated wall-clock when ``target`` is first measured."""
        for record in self.records:
            if record.evaluated and record.test_accuracy >= target:
                return record.virtual_time
        return None
