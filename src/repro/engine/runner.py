"""The event-driven asynchronous federated training loop.

Clients start and finish at *simulated* timestamps instead of lock-step
rounds: a dispatched client's completion is scheduled at
``now + planned_round_seconds`` (the FLOP-derived duration from the
:class:`~repro.fl.timing.TimingModel`), and completions are processed in
virtual-time order. A fast client therefore contributes many updates while
a straggler is still working on its first — the heterogeneity dynamics the
paper's Table III studies, without the slowest client gating every round.

Determinism: planned durations, the event heap's (time, dispatch-sequence)
order, and every scheduler RNG draw are independent of how the backend
parallelises the numeric work, so the same seed yields an identical event
log — and identical final weights — under Serial, ThreadPool and
ProcessPool backends alike.
"""

from __future__ import annotations

from dataclasses import replace

from repro.engine.aggregators import AsyncAggregator
from repro.engine.availability import AlwaysAvailable, AvailabilityModel
from repro.engine.backends import ExecutionBackend, SerialBackend
from repro.engine.clock import EventQueue, ScheduledEvent, VirtualClock
from repro.engine.records import EventLog, EventRecord
from repro.fl.client import Client
from repro.fl.server import Server
from repro.fl.timing import TimingModel
from repro.utils import make_rng


def run_async_federated_training(
    server: Server,
    clients: list[Client],
    aggregator: AsyncAggregator,
    max_events: int,
    seed: int = 0,
    timing: TimingModel | None = None,
    backend: ExecutionBackend | None = None,
    availability: AvailabilityModel | None = None,
    max_concurrency: int | None = None,
    eval_every: int = 1,
    verbose: bool = False,
) -> EventLog:
    """Process up to ``max_events`` client completions through ``aggregator``.

    ``max_events`` is the work budget: every processed completion — applied
    update, buffered update, or mid-round dropout — counts. With a budget of
    ``rounds × num_clients`` an async run does the same total local work as
    a synchronous full-participation run of ``rounds`` rounds, making their
    efficiency numbers directly comparable.

    ``eval_every`` is in *model versions* (aggregations applied); records
    between evaluations carry the last measured accuracy with
    ``evaluated=False``.
    """
    if max_events <= 0:
        raise ValueError("max_events must be positive")
    if eval_every <= 0:
        raise ValueError("eval_every must be positive")
    if not clients:
        raise ValueError("client pool is empty")
    timing = timing or TimingModel()
    availability = availability or AlwaysAvailable()
    owns_backend = backend is None
    backend = backend or SerialBackend()
    if max_concurrency is None:
        max_concurrency = len(clients)
    if max_concurrency <= 0:
        raise ValueError("max_concurrency must be positive")

    rng = make_rng(seed)
    clock = VirtualClock()
    queue = EventQueue()
    log = EventLog()
    idle = set(range(len(clients)))
    in_flight = 0
    last_accuracy = 0.0
    cumulative_seconds = 0.0
    dropout_p = float(getattr(availability, "dropout_probability", 0.0))

    def dispatch_ready() -> None:
        """Fill free slots with idle clients that are online right now.

        Dispatches are also capped by the remaining event budget: every
        in-flight round produces exactly one event, so dispatching past
        ``max_events`` would train rounds whose results are discarded.
        """
        nonlocal in_flight
        while in_flight < max_concurrency and len(log) + in_flight < max_events:
            candidates = sorted(
                cid for cid in idle if availability.is_online(cid, clock.now)
            )
            if not candidates:
                return
            cid = candidates[int(rng.integers(len(candidates)))]
            idle.discard(cid)
            in_flight += 1
            client = clients[cid]
            duration = client.planned_round_seconds(server.model, timing)
            version = server.round_index
            if dropout_p > 0.0 and rng.random() < dropout_p:
                # The round is lost partway through; the local work never
                # runs (the result would be discarded), but the simulated
                # seconds up to the abort still count as wasted client time.
                drop_fraction = float(rng.uniform(0.1, 0.9))
                queue.push(
                    clock.now + drop_fraction * duration,
                    client_id=cid,
                    dispatch_version=version,
                    duration=drop_fraction * duration,
                    kind="drop",
                )
            else:
                snapshot = server.broadcast()
                handle = backend.submit(client, server.model, snapshot, timing)
                queue.push(
                    clock.now + duration,
                    client_id=cid,
                    dispatch_version=version,
                    duration=duration,
                    kind="update",
                    handle=handle,
                    snapshot=snapshot,
                )

    def advance_to_next_online() -> bool:
        """No events pending: jump the clock to the next client arrival."""
        times = [
            t
            for cid in idle
            if (t := availability.next_online(cid, clock.now)) is not None
        ]
        if not times:
            return False
        clock.advance_to(min(times))
        return True

    def process(event: ScheduledEvent) -> EventRecord:
        nonlocal cumulative_seconds, last_accuracy, in_flight
        clock.advance_to(event.time)
        in_flight -= 1
        idle.add(event.client_id)
        staleness = server.round_index - event.dispatch_version
        if event.kind == "drop":
            cumulative_seconds += event.duration
            return EventRecord(
                event_index=len(log),
                kind="drop",
                virtual_time=clock.now,
                client_id=event.client_id,
                staleness=staleness,
                model_version=server.round_index,
                test_accuracy=last_accuracy,
                evaluated=False,
                num_selected=0,
                client_seconds=event.duration,
                cumulative_client_seconds=cumulative_seconds,
                mean_local_loss=0.0,
            )
        update = backend.result(event.handle)
        cumulative_seconds += update.train_seconds
        applied = aggregator.apply(server, update, staleness, event.snapshot)
        evaluated = applied and server.round_index % eval_every == 0
        if evaluated:
            last_accuracy = server.evaluate()
        return EventRecord(
            event_index=len(log),
            kind="update" if applied else "buffer",
            virtual_time=clock.now,
            client_id=event.client_id,
            staleness=staleness,
            model_version=server.round_index,
            test_accuracy=last_accuracy,
            evaluated=evaluated,
            num_selected=update.num_selected,
            client_seconds=update.train_seconds,
            cumulative_client_seconds=cumulative_seconds,
            mean_local_loss=update.mean_loss,
        )

    try:
        dispatch_ready()
        while len(log) < max_events:
            if not len(queue):
                # Everyone is offline; wait (in virtual time) for churn.
                if not advance_to_next_online():
                    break
                dispatch_ready()
                if not len(queue):
                    break
            record = process(queue.pop())
            log.append(record)
            if verbose:  # pragma: no cover - console convenience
                print(
                    f"event {record.event_index:4d} t={record.virtual_time:9.2f}s "
                    f"client={record.client_id:3d} kind={record.kind:6s} "
                    f"stale={record.staleness:2d} v={record.model_version:4d} "
                    f"acc={record.test_accuracy:.4f}"
                )
            if len(log) < max_events:
                dispatch_ready()
        # Fold any remainder stranded in a partial buffer (FedBuff) into
        # the model: its client seconds are already on the bill. The flush
        # is logged as a server-side event with client_id = -1.
        if aggregator.flush(server):
            last_accuracy = server.evaluate()
            log.append(
                EventRecord(
                    event_index=len(log),
                    kind="update",
                    virtual_time=clock.now,
                    client_id=-1,
                    staleness=0,
                    model_version=server.round_index,
                    test_accuracy=last_accuracy,
                    evaluated=True,
                    num_selected=0,
                    client_seconds=0.0,
                    cumulative_client_seconds=cumulative_seconds,
                    mean_local_loss=0.0,
                )
            )
        elif log.records and not log.records[-1].evaluated:
            # Mirror the sync loop's forced final evaluation: the run must
            # end on a measured accuracy, whatever the eval cadence.
            last_accuracy = server.evaluate()
            log.records[-1] = replace(
                log.records[-1], test_accuracy=last_accuracy, evaluated=True
            )
    finally:
        if owns_backend:
            backend.close()
    return log
