"""The event-driven asynchronous federated training loop.

Clients start and finish at *simulated* timestamps instead of lock-step
rounds: a dispatched client's completion is scheduled at
``now + planned_round_seconds`` (the FLOP-derived duration from the
:class:`~repro.fl.timing.TimingModel`), and completions are processed in
virtual-time order. A fast client therefore contributes many updates while
a straggler is still working on its first — the heterogeneity dynamics the
paper's Table III studies, without the slowest client gating every round.

Determinism: planned durations, the event heap's (time, dispatch-sequence)
order, and every scheduler RNG draw are independent of how the backend
parallelises the numeric work, so the same seed yields an identical event
log — and identical final weights — under Serial, ThreadPool and
ProcessPool backends alike.

Checkpointing: every dispatch records the client's RNG state, so a
checkpoint (an :class:`AsyncRunState`) can describe in-flight rounds
without serialising backend handles — on resume they are simply
re-dispatched from their recorded RNG state and broadcast snapshot,
reproducing the identical event sequence.
:func:`repro.fl.checkpoint.save_async_checkpoint` /
``resume_async_federated_training`` own the on-disk format.

Model versions here are usually slab-backed
(:class:`~repro.fl.slab.SlabState`): each broadcast snapshot's θ is one
contiguous array, so the aggregators mix/delta whole slabs with single
ufuncs and the process backend republishes a new version as one memcpy.
The version-retirement sweep below feeds dead versions back through
``AsyncAggregator.recycle``, which harvests their flats — a long run
cycles a bounded set of θ-sized slabs instead of allocating per event.
Everything degrades transparently to per-key dicts (restored checkpoints,
heterogeneous θ) with bitwise-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable

import numpy as np

from repro.engine.aggregators import AsyncAggregator
from repro.engine.availability import AlwaysAvailable, AvailabilityModel
from repro.engine.backends import ExecutionBackend, SerialBackend
from repro.engine.clock import EventQueue, ScheduledEvent, VirtualClock
from repro.engine.records import EventLog, EventRecord
from repro.fl.client import Client
from repro.fl.server import Server
from repro.fl.timing import TimingModel
from repro.obs import tracing
from repro.utils import make_rng


@dataclass
class AsyncRunState:
    """Everything needed to continue an async run to the identical event
    sequence — backend-invariant by construction.

    In-flight rounds are stored as *pending dispatches* (client id, event
    time/seq, dispatch version, dispatch-time RNG state) plus the broadcast
    snapshot of each dispatched-from model version; resuming re-submits
    them. Idle clients' RNG streams are stored directly — for a client with
    a round in flight the parent-side stream position depends on the
    backend (serial advances at submit, process at collection), so only the
    dispatch-time state is recorded for those.
    """

    clock_now: float
    scheduler_rng_state: dict
    #: client id -> current RNG state, idle clients only (see above)
    idle_rng_states: dict[int, dict]
    #: serialized pending events: time, seq, client_id, dispatch_version,
    #: duration, kind, rng_state — for updates the dispatch-time client
    #: RNG state (resume re-runs the round from it), for drops the
    #: client's current stream state (no round runs, but the stream must
    #: survive the resume; the client is absent from the idle map)
    pending: list[dict]
    next_seq: int
    #: dispatch_version -> broadcast state the version's rounds started from
    snapshots: dict[int, dict[str, np.ndarray]]
    #: FedBuff's buffered (delta, weight) pairs; empty for FedAsync
    aggregator_state: list[tuple[dict[str, np.ndarray], float]]
    records: list[EventRecord]
    last_accuracy: float
    cumulative_seconds: float
    server_round_index: int
    server_state: dict[str, np.ndarray]
    #: run configuration echoed for validation and resume defaults
    meta: dict


def run_async_federated_training(
    server: Server,
    clients: list[Client],
    aggregator: AsyncAggregator,
    max_events: int,
    seed: int = 0,
    timing: TimingModel | None = None,
    backend: ExecutionBackend | None = None,
    availability: AvailabilityModel | None = None,
    max_concurrency: int | None = None,
    eval_every: int = 1,
    verbose: bool = False,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 0,
    on_event: Callable[[EventRecord], None] | None = None,
    resume: AsyncRunState | None = None,
    feature_runtime=None,
    emergency_checkpoint: bool = False,
) -> EventLog:
    """Process up to ``max_events`` client completions through ``aggregator``.

    ``max_events`` is the work budget: every processed completion — applied
    update, buffered update, or mid-round dropout — counts. With a budget of
    ``rounds × num_clients`` an async run does the same total local work as
    a synchronous full-participation run of ``rounds`` rounds, making their
    efficiency numbers directly comparable.

    ``eval_every`` is in *model versions* (aggregations applied); records
    between evaluations carry the last measured accuracy with
    ``evaluated=False``.

    With ``checkpoint_path`` and ``checkpoint_every > 0``, an
    :class:`AsyncRunState` is written every ``checkpoint_every`` events;
    :func:`repro.fl.checkpoint.resume_async_federated_training` continues
    an interrupted run to the bitwise-identical event log and weights.
    ``on_event`` is called after each processed event (after any checkpoint
    write); an exception it raises aborts the run — the mechanism the
    kill-and-resume tests use.

    With ``emergency_checkpoint=True`` (requires ``checkpoint_path``), the
    loop snapshots the run state after every processed event and, on a
    crash anywhere in the loop — a worker failure past its retry budget,
    an ``on_event`` kill, a signal — writes that snapshot as a normal
    async checkpoint on the way down before re-raising, so a supervised
    restart (:func:`repro.engine.faults.run_supervised`) resumes from the
    last completed event instead of the last periodic save.

    ``resume`` is internal: a restored state handed over by the resume
    entry point in :mod:`repro.fl.checkpoint`. The caller must restore the
    server's weights and round index before the call.

    ``feature_runtime`` (a :class:`~repro.fl.features.FeatureRuntime`) only
    applies when no ``backend`` is given: the internally-created serial
    backend then runs head-only client rounds on cached ϕ(x) features —
    bitwise identical results, documented in :mod:`repro.fl.features`. An
    explicit backend carries its own runtime.
    """
    if max_events <= 0:
        raise ValueError("max_events must be positive")
    if eval_every <= 0:
        raise ValueError("eval_every must be positive")
    if not clients:
        raise ValueError("client pool is empty")
    if checkpoint_every < 0:
        raise ValueError("checkpoint_every must be non-negative")
    if checkpoint_every and not checkpoint_path:
        raise ValueError("checkpoint_every requires a checkpoint_path")
    if emergency_checkpoint and not checkpoint_path:
        raise ValueError("emergency_checkpoint requires a checkpoint_path")
    timing = timing or TimingModel()
    availability = availability or AlwaysAvailable()
    owns_backend = backend is None
    backend = backend or SerialBackend(feature_runtime=feature_runtime)
    if max_concurrency is None:
        max_concurrency = len(clients)
    if max_concurrency <= 0:
        raise ValueError("max_concurrency must be positive")

    rng = make_rng(seed)
    clock = VirtualClock()
    queue = EventQueue()
    log = EventLog()
    idle = set(range(len(clients)))
    in_flight = 0
    last_accuracy = 0.0
    cumulative_seconds = 0.0
    dropout_p = float(getattr(availability, "dropout_probability", 0.0))
    #: dispatch_version -> [broadcast snapshot, in-flight update count];
    #: when the count of a *superseded* version reaches zero, nothing will
    #: ever read its θ arrays again and they are recycled into the
    #: aggregator's ``out=`` buffer pool (see AsyncAggregator.recycle).
    live_versions: dict[int, list] = {}

    def _retain_version(version: int, snapshot) -> None:
        entry = live_versions.setdefault(version, [snapshot, 0])
        entry[1] += 1

    def _sweep_dead_versions() -> None:
        for version in [
            v
            for v, entry in live_versions.items()
            if entry[1] <= 0 and v < server.round_index
        ]:
            snapshot, _ = live_versions.pop(version)
            aggregator.recycle(snapshot)

    if resume is not None:
        clock = VirtualClock(resume.clock_now)
        rng.bit_generator.state = resume.scheduler_rng_state
        log = EventLog(records=list(resume.records))
        last_accuracy = float(resume.last_accuracy)
        cumulative_seconds = float(resume.cumulative_seconds)
        aggregator.state_restore(resume.aggregator_state)
        idle = set(range(len(clients))) - {
            int(p["client_id"]) for p in resume.pending
        }
        for cid, state in resume.idle_rng_states.items():
            clients[int(cid)].rng.bit_generator.state = state
        in_flight = len(resume.pending)

    def dispatch_ready() -> None:
        """Fill free slots with idle clients that are online right now.

        Dispatches are also capped by the remaining event budget: every
        in-flight round produces exactly one event, so dispatching past
        ``max_events`` would train rounds whose results are discarded.
        """
        nonlocal in_flight
        with tracing.span("engine.dispatch"):
            _dispatch_ready()

    def _dispatch_ready() -> None:
        nonlocal in_flight
        # Phase 1 — scheduler decisions only. Every draw (candidate pick,
        # dropout, drop fraction) happens in the exact per-client order of
        # the original loop, but submission is deferred so phase 2 can hand
        # the whole wave to ``backend.submit_many`` — which may group
        # compatible clients into one block-stacked cohort job. Client
        # rounds consume only their own RNG streams, so running them after
        # (instead of between) the decisions is bitwise invisible.
        planned: list[tuple] = []
        while in_flight < max_concurrency and len(log) + in_flight < max_events:
            candidates = sorted(
                cid for cid in idle if availability.is_online(cid, clock.now)
            )
            if not candidates:
                break
            cid = candidates[int(rng.integers(len(candidates)))]
            idle.discard(cid)
            in_flight += 1
            client = clients[cid]
            duration = client.planned_round_seconds(server.model, timing)
            version = server.round_index
            if dropout_p > 0.0 and rng.random() < dropout_p:
                # The round is lost partway through; the local work never
                # runs (the result would be discarded), but the simulated
                # seconds up to the abort still count as wasted client time.
                # The client RNG is still recorded: the client is absent
                # from a checkpoint's idle map while the drop is pending,
                # and its stream must survive the resume.
                drop_fraction = float(rng.uniform(0.1, 0.9))
                planned.append(
                    (
                        "drop",
                        cid,
                        version,
                        drop_fraction * duration,
                        client.rng.bit_generator.state,
                    )
                )
            else:
                planned.append(
                    (
                        "update",
                        cid,
                        version,
                        duration,
                        client.rng.bit_generator.state,
                    )
                )
        if not planned:
            return
        # Phase 2 — grouped submission. All updates in one wave dispatch
        # from the same model version (nothing aggregates mid-dispatch),
        # hence from one broadcast snapshot.
        update_cids = [p[1] for p in planned if p[0] == "update"]
        handles: dict[int, object] = {}
        snapshot = None
        if update_cids:
            snapshot = server.broadcast()
            wave = backend.submit_many(
                [clients[cid] for cid in update_cids],
                server.model,
                snapshot,
                timing,
            )
            handles = dict(zip(update_cids, wave))
        # Phase 3 — queue pushes in decision order, preserving the event
        # heap's tie-break sequence numbers.
        for kind, cid, version, duration, rng_state in planned:
            if kind == "drop":
                queue.push(
                    clock.now + duration,
                    client_id=cid,
                    dispatch_version=version,
                    duration=duration,
                    kind="drop",
                    rng_state=rng_state,
                )
            else:
                _retain_version(version, snapshot)
                queue.push(
                    clock.now + duration,
                    client_id=cid,
                    dispatch_version=version,
                    duration=duration,
                    kind="update",
                    handle=handles[cid],
                    snapshot=snapshot,
                    rng_state=rng_state,
                )

    if resume is not None:
        # Re-dispatch the checkpointed in-flight rounds from their recorded
        # dispatch-time RNG states and broadcast snapshots, preserving the
        # original event times and tie-break sequence numbers.
        restored: list[ScheduledEvent] = []
        for p in sorted(resume.pending, key=lambda d: int(d["seq"])):
            cid = int(p["client_id"])
            kind = str(p["kind"])
            handle = snapshot = None
            if kind == "update":
                snapshot = resume.snapshots[int(p["dispatch_version"])]
                client = clients[cid]
                client.rng.bit_generator.state = p["rng_state"]
                _retain_version(int(p["dispatch_version"]), snapshot)
                handle = backend.submit(client, server.model, snapshot, timing)
            elif p["rng_state"] is not None:
                # A pending drop runs no local round, but the client's
                # stream (advanced by its earlier rounds) must be restored
                # for the rounds it will run after the drop completes.
                clients[cid].rng.bit_generator.state = p["rng_state"]
            restored.append(
                ScheduledEvent(
                    time=float(p["time"]),
                    seq=int(p["seq"]),
                    client_id=cid,
                    dispatch_version=int(p["dispatch_version"]),
                    duration=float(p["duration"]),
                    kind=kind,
                    handle=handle,
                    snapshot=snapshot,
                    rng_state=p.get("rng_state"),
                )
            )
        queue.restore(restored, int(resume.next_seq))

    def capture_state() -> AsyncRunState:
        """Snapshot the run between two events (see :class:`AsyncRunState`)."""
        pending = []
        snapshots: dict[int, dict[str, np.ndarray]] = {}
        for ev in queue.snapshot():
            pending.append(
                {
                    "time": ev.time,
                    "seq": ev.seq,
                    "client_id": ev.client_id,
                    "dispatch_version": ev.dispatch_version,
                    "duration": ev.duration,
                    "kind": ev.kind,
                    "rng_state": ev.rng_state,
                }
            )
            if ev.kind == "update":
                snapshots[ev.dispatch_version] = ev.snapshot
        return AsyncRunState(
            clock_now=clock.now,
            scheduler_rng_state=rng.bit_generator.state,
            idle_rng_states={
                cid: clients[cid].rng.bit_generator.state for cid in sorted(idle)
            },
            pending=pending,
            next_seq=queue.next_seq,
            snapshots=snapshots,
            aggregator_state=aggregator.state_export(),
            records=list(log.records),
            last_accuracy=last_accuracy,
            cumulative_seconds=cumulative_seconds,
            server_round_index=server.round_index,
            server_state=server.global_state,
            meta={
                "max_events": max_events,
                "eval_every": eval_every,
                "max_concurrency": max_concurrency,
                "seed": seed,
                "num_clients": len(clients),
            },
        )

    def process(event: ScheduledEvent) -> EventRecord:
        nonlocal cumulative_seconds, last_accuracy, in_flight
        clock.advance_to(event.time)
        in_flight -= 1
        idle.add(event.client_id)
        staleness = server.round_index - event.dispatch_version
        if event.kind == "drop":
            cumulative_seconds += event.duration
            tracing.event_span(
                "drop", event.time, event.duration, event.client_id
            )
            return EventRecord(
                event_index=len(log),
                kind="drop",
                virtual_time=clock.now,
                client_id=event.client_id,
                staleness=staleness,
                model_version=server.round_index,
                test_accuracy=last_accuracy,
                evaluated=False,
                num_selected=0,
                client_seconds=event.duration,
                cumulative_client_seconds=cumulative_seconds,
                mean_local_loss=0.0,
            )
        with tracing.span("engine.collect", event.time):
            update = backend.result(event.handle)
        cumulative_seconds += update.train_seconds
        # The simulated round on the virtual track: one lane per client,
        # spanning the event's [dispatch, completion] window.
        tracing.event_span(
            event.kind, event.time, event.duration, event.client_id
        )
        with tracing.span("engine.aggregate", event.time):
            applied = aggregator.apply(
                server, update, staleness, event.snapshot
            )
        entry = live_versions.get(event.dispatch_version)
        if entry is not None:
            entry[1] -= 1
        _sweep_dead_versions()
        theta_slab = getattr(update.theta, "theta_slab", None)
        if theta_slab is not None and theta_slab.base is not None:
            # A cohort lane: this update's θ is a row view into its cohort
            # job's delta stack, dead once applied (both aggregators
            # consume the incoming θ without retaining it). Feed it to the
            # aggregator's flat pool so async cohort rounds reuse slab
            # buffers instead of allocating per event.
            aggregator.recycle(update.theta)
        evaluated = applied and server.round_index % eval_every == 0
        if evaluated:
            last_accuracy = server.evaluate()
        return EventRecord(
            event_index=len(log),
            kind="update" if applied else "buffer",
            virtual_time=clock.now,
            client_id=event.client_id,
            staleness=staleness,
            model_version=server.round_index,
            test_accuracy=last_accuracy,
            evaluated=evaluated,
            num_selected=update.num_selected,
            client_seconds=update.train_seconds,
            cumulative_client_seconds=cumulative_seconds,
            mean_local_loss=update.mean_loss,
        )

    def advance_to_next_online() -> bool:
        """No events pending: jump the clock to the next client arrival."""
        times = [
            t
            for cid in idle
            if (t := availability.next_online(cid, clock.now)) is not None
        ]
        if not times:
            return False
        clock.advance_to(min(times))
        return True

    #: latest between-events snapshot; written on the way down by the
    #: crash path when ``emergency_checkpoint`` is on
    last_state: AsyncRunState | None = None
    try:
        dispatch_ready()
        while len(log) < max_events:
            if not len(queue):
                # Everyone is offline; wait (in virtual time) for churn.
                if not advance_to_next_online():
                    break
                dispatch_ready()
                if not len(queue):
                    break
            record = process(queue.pop())
            log.append(record)
            if verbose:  # pragma: no cover - console convenience
                print(
                    f"event {record.event_index:4d} t={record.virtual_time:9.2f}s "
                    f"client={record.client_id:3d} kind={record.kind:6s} "
                    f"stale={record.staleness:2d} v={record.model_version:4d} "
                    f"acc={record.test_accuracy:.4f}"
                )
            if len(log) < max_events:
                dispatch_ready()
            state = None
            if (
                checkpoint_path
                and checkpoint_every > 0
                and len(log) % checkpoint_every == 0
            ):
                # Local import: fl.checkpoint imports this module for resume.
                from repro.fl.checkpoint import save_async_checkpoint

                state = capture_state()
                save_async_checkpoint(checkpoint_path, state)
            if emergency_checkpoint:
                # Stash a consistent between-events snapshot for the
                # crash-path save below (reusing the periodic one when a
                # save just happened at this exact point).
                last_state = state if state is not None else capture_state()
            if on_event is not None:
                on_event(record)
        # Fold any remainder stranded in a partial buffer (FedBuff) into
        # the model: its client seconds are already on the bill. The flush
        # is logged as a server-side event with client_id = -1.
        if aggregator.flush(server):
            last_accuracy = server.evaluate()
            log.append(
                EventRecord(
                    event_index=len(log),
                    kind="update",
                    virtual_time=clock.now,
                    client_id=-1,
                    staleness=0,
                    model_version=server.round_index,
                    test_accuracy=last_accuracy,
                    evaluated=True,
                    num_selected=0,
                    client_seconds=0.0,
                    cumulative_client_seconds=cumulative_seconds,
                    mean_local_loss=0.0,
                )
            )
        elif log.records and not log.records[-1].evaluated:
            # Mirror the sync loop's forced final evaluation: the run must
            # end on a measured accuracy, whatever the eval cadence.
            last_accuracy = server.evaluate()
            log.records[-1] = replace(
                log.records[-1], test_accuracy=last_accuracy, evaluated=True
            )
    except BaseException:
        if last_state is not None:
            # Best-effort emergency save; the original crash must
            # propagate whatever happens here. (Local imports: the
            # checkpoint module imports this one for resume.)
            try:
                from repro.engine.faults import FAULTS
                from repro.fl.checkpoint import save_async_checkpoint

                save_async_checkpoint(checkpoint_path, last_state)
                FAULTS["emergency_checkpoints"] += 1
            except Exception:  # pragma: no cover - diagnostics only
                pass
        raise
    finally:
        if owns_backend:
            backend.close()
    return log
