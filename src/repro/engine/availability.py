"""Client availability and mid-round dropout for the asynchronous engine.

Real federations see *availability churn*: devices come online and offline
(charging, network, user activity) and sometimes abort a round midway. The
engine composes an :class:`AvailabilityModel` with the dispatch policy: a
client is only dispatched while online, and a dispatched round may be lost
to a dropout, wasting the simulated seconds already spent.

All models are deterministic functions of (seed, client, time window), so
the same seed replays the same churn — a requirement for the engine's
bitwise reproducibility guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class AvailabilityModel:
    """Interface: per-client online intervals plus a mid-round dropout rate."""

    #: probability that a dispatched round is aborted before completion
    dropout_probability: float = 0.0

    def is_online(self, client_id: int, time: float) -> bool:
        """Whether the client can be dispatched at virtual ``time``."""
        return True

    def next_online(self, client_id: int, time: float) -> float | None:
        """Earliest virtual time >= ``time`` the client is online (None: never)."""
        return time if self.is_online(client_id, time) else None


@dataclass
class AlwaysAvailable(AvailabilityModel):
    """Every client is online for the whole run (the default).

    A non-zero ``dropout_probability`` still loses that fraction of
    dispatched rounds midway — churn-free presence, flaky completion.
    """

    dropout_probability: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ValueError("dropout_probability must be in [0, 1)")


@dataclass
class RandomAvailability(AvailabilityModel):
    """Independent per-client on/off windows of fixed simulated length.

    Time is cut into windows of ``period`` seconds; each (client, window)
    pair is online with probability ``online_fraction``, decided by a
    counter-based RNG keyed on (seed, client, window) — no state to carry,
    so queries at arbitrary times are consistent and deterministic.
    """

    online_fraction: float = 0.8
    period: float = 10.0
    seed: int = 0
    dropout_probability: float = 0.0
    #: windows to scan before declaring a client gone for good
    max_windows_ahead: int = 10_000

    def __post_init__(self):
        if not 0.0 < self.online_fraction <= 1.0:
            raise ValueError("online_fraction must be in (0, 1]")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ValueError("dropout_probability must be in [0, 1)")

    def _window_online(self, client_id: int, window: int) -> bool:
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, int(client_id), int(window)])
        )
        return bool(rng.random() < self.online_fraction)

    def _window(self, time: float) -> int:
        # Virtual time is non-negative; clamping keeps queries total (a
        # negative window would be an invalid SeedSequence entry).
        return max(0, int(time // self.period))

    def is_online(self, client_id, time):
        return self._window_online(client_id, self._window(time))

    def next_online(self, client_id, time):
        window = self._window(time)
        for k in range(window, window + self.max_windows_ahead):
            if self._window_online(client_id, k):
                return max(float(time), k * self.period)
        return None


@dataclass
class TraceAvailability(AvailabilityModel):
    """Explicit per-client online intervals (trace-driven churn).

    ``traces`` maps client id to a sorted list of ``(start, end)`` online
    intervals in simulated seconds; clients without a trace are always
    online. End times are exclusive.
    """

    traces: dict[int, list[tuple[float, float]]] = field(default_factory=dict)
    dropout_probability: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ValueError("dropout_probability must be in [0, 1)")
        for cid, intervals in self.traces.items():
            last_end = -np.inf
            for start, end in intervals:
                if end <= start:
                    raise ValueError(
                        f"client {cid}: empty interval ({start}, {end})"
                    )
                if start < last_end:
                    raise ValueError(f"client {cid}: intervals overlap/unsorted")
                last_end = end

    def is_online(self, client_id, time):
        intervals = self.traces.get(int(client_id))
        if intervals is None:
            return True
        return any(start <= time < end for start, end in intervals)

    def next_online(self, client_id, time):
        intervals = self.traces.get(int(client_id))
        if intervals is None:
            return float(time)
        for start, end in intervals:
            if time < end:
                return max(float(time), float(start))
        return None
