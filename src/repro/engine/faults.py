"""Fault policy, deterministic chaos injection, and supervised restarts.

The campaign runtime dispatches long-lived shared-memory jobs (per-client
rounds, cohort chunks, eval shards) to warm worker processes. A single
worker crash, hung job, or corrupted segment used to kill the whole run.
This module is the fault story:

- :class:`FaultPolicy` — per-job deadline, retry budget, and an
  exponential backoff whose jitter comes from a dedicated seeded RNG
  stream, so retry *timing* is as reproducible as retry *results*.
- :class:`ChaosPlan` — a seeded fault-injection schedule (kill a worker
  before job K, delay a job, corrupt a published segment's bytes, tear a
  checkpoint write mid-save) parsed from a compact CLI spec
  (``"kill@3;delay@5:0.02;corrupt@0;tear@1"``) so every failure scenario
  replays exactly.
- :func:`run_supervised` — bounded-restart supervision around a training
  entry point: on a mid-round crash the loops below write an emergency
  checkpoint (sync format 2 / async format 4) and the supervisor resumes
  from it.

Why recovery never drifts results: every job blob is a pure function of
its dispatch-time RNG state and the published BLAKE2b-fingerprinted
segments, and the parent only folds a job's effects (client RNG advance,
metric shards, θ update) in at ``result()`` time. A lost job can
therefore be redispatched — or run inline after degradation — any number
of times and produce bitwise-identical bytes.

Everything observable lands in the exported ``faults.*`` counter group so
the PR 6 registry and telemetry summaries pick it up with zero wiring.
Nothing here reads an RNG stream shared with training.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.obs import metrics as obs_metrics

#: every fault-layer event, exported for exact worker-shard merge and the
#: telemetry registry (see repro.obs.metrics)
FAULTS = obs_metrics.export_group(
    "faults",
    {
        "retries": 0,
        "respawns": 0,
        "timeouts": 0,
        "corrupt_segments": 0,
        "segment_repairs": 0,
        "degradations": 0,
        "emergency_checkpoints": 0,
        "supervised_restarts": 0,
        "chaos_kills": 0,
        "chaos_delays": 0,
        "chaos_corruptions": 0,
        "chaos_torn_saves": 0,
        "chaos_disk_corruptions": 0,
        "chaos_disk_tears": 0,
    },
)

#: BLAKE2b digest size for segment fingerprints — matches the shard/
#: feature fingerprints the backends already publish (12 bytes is plenty
#: to detect corruption; this is integrity checking, not cryptography)
_DIGEST_SIZE = 12


def segment_fingerprint(buf, nbytes: int) -> bytes:
    """BLAKE2b fingerprint of the first ``nbytes`` of a buffer.

    Shared-memory segments round up to page size, so callers must pin the
    logical length — hashing ``shm.buf`` whole would tie the fingerprint
    to the platform's page size.
    """
    return hashlib.blake2b(bytes(buf[:nbytes]), digest_size=_DIGEST_SIZE).digest()


class SegmentCorruption(Exception):
    """A published segment's bytes no longer match their fingerprint.

    Raised worker-side on attach verification and parent-side on pool
    re-attach; carries the segment name so the parent can republish just
    that segment. Picklable (single string arg) so it survives the
    process-pool result channel.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name


@dataclass
class FaultPolicy:
    """Retry/deadline/degradation budget for one campaign's jobs.

    ``backoff_delay(attempt)`` is deterministic given ``backoff_seed``:
    the jitter comes from this policy's own ``default_rng`` stream, never
    from the training RNGs, so enabling retries cannot perturb results
    and a replayed failure scenario waits the same milliseconds.
    """

    #: wall-clock seconds a single job may run before the watchdog kills
    #: the workers and the job is retried; ``None`` disables the watchdog
    job_deadline: float | None = None
    #: consecutive failures of one job before degrading to inline execution
    max_retries: int = 2
    #: first backoff wait (seconds); attempt ``n`` waits
    #: ``base * factor**(n-1)``, capped at ``backoff_max``
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: ± fraction of jittered spread around the exponential schedule
    backoff_jitter: float = 0.1
    #: seed of the dedicated jitter stream (reproducible retry timing)
    backoff_seed: int = 0
    #: verify segment fingerprints on worker attach and republish on
    #: mismatch (detects corruption instead of silently training on it)
    verify_segments: bool = True
    _backoff_rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self):
        self._backoff_rng = np.random.default_rng(self.backoff_seed)

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.backoff_jitter:
            delay *= 1.0 + self.backoff_jitter * float(
                self._backoff_rng.uniform(-1.0, 1.0)
            )
        return max(0.0, delay)


class ChaosPlan:
    """A seeded, replayable schedule of injected faults.

    Wire format (``parse``): semicolon-separated ``kind@job[:value]``
    events, where ``kind`` is one of

    - ``kill``     — kill one worker process right after job ``K`` is
      submitted (before its result is collected), forcing a redispatch;
    - ``delay``    — make job ``K`` sleep ``value`` seconds inside the
      worker (drive it past a watchdog deadline);
    - ``corrupt``  — flip one byte (at a seeded offset) of the feature —
      else shard — segment of job ``K`` *before* dispatch, so attach
      verification must catch it;
    - ``tear``     — abort checkpoint save number ``K`` (0-based) after
      its payloads are written but before the atomic manifest/history
      swap, simulating a crash mid-save;
    - ``disk-tear``    — abort artifact-store write number ``K``
      (0-based, counted per plan) after the payload commit but before
      the CRC sidecar commit, leaving a torn store entry for the
      quarantine path to detect;
    - ``disk-corrupt`` — flip one byte (at a seeded offset) of artifact-
      store write number ``K`` *after* its commit, so the next CRC
      verification must quarantine and rebuild it.

    ``job`` is the backend's global job index (0-based, counted across
    per-client, cohort-chunk and eval-shard submissions), or ``*`` to
    fire on every job. ``tear`` counts checkpoint saves and
    ``disk-tear``/``disk-corrupt`` count store writes instead of jobs.
    Indexed events fire exactly once; ``*`` events fire every time. The
    byte offsets chosen by ``corrupt``/``disk-corrupt`` come from the
    plan's own seeded RNG, so a scenario replays bit-for-bit.
    """

    KINDS = ("kill", "delay", "corrupt", "tear", "disk-corrupt", "disk-tear")

    #: one-line grammar, quoted by every parse error
    GRAMMAR = "kind@job[:value] events joined by ';', kind in %s, job an int or '*'" % (
        "/".join(KINDS),
    )

    def __init__(self, events: list[tuple[str, int | None, float]] | None = None,
                 seed: int = 0):
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        #: (kind, job index or None for ``*``, value)
        self.events = list(events or [])
        self._fired: set[int] = set()
        self._saves_seen = 0
        self._store_writes_seen = 0

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "ChaosPlan":
        events: list[tuple[str, int | None, float]] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            head, _, value = chunk.partition(":")
            kind, at, index = head.partition("@")
            kind = kind.strip()
            if kind not in cls.KINDS:
                raise ValueError(
                    f"chaos spec {spec!r}: unknown chaos kind {kind!r} in "
                    f"event {chunk!r} (grammar: {cls.GRAMMAR})"
                )
            index = index.strip()
            if not at or not index:
                raise ValueError(
                    f"chaos spec {spec!r}: event {chunk!r} is missing '@job' "
                    f"(grammar: {cls.GRAMMAR})"
                )
            if index == "*":
                job = None
            else:
                try:
                    job = int(index)
                except ValueError:
                    raise ValueError(
                        f"chaos spec {spec!r}: bad job index {index!r} in "
                        f"event {chunk!r} — expected an int or '*' "
                        f"(grammar: {cls.GRAMMAR})"
                    ) from None
                if job < 0:
                    raise ValueError(
                        f"chaos spec {spec!r}: negative job index {index!r} "
                        f"in event {chunk!r} (grammar: {cls.GRAMMAR})"
                    )
            try:
                parsed_value = float(value) if value else 0.0
            except ValueError:
                raise ValueError(
                    f"chaos spec {spec!r}: bad value {value!r} in event "
                    f"{chunk!r} — expected a float after ':' "
                    f"(grammar: {cls.GRAMMAR})"
                ) from None
            events.append((kind, job, parsed_value))
        return cls(events, seed=seed)

    def spec(self) -> str:
        """The plan re-encoded in the ``parse`` wire format."""
        parts = []
        for kind, job, value in self.events:
            where = "*" if job is None else str(job)
            parts.append(
                f"{kind}@{where}" + (f":{value:g}" if value else "")
            )
        return ";".join(parts)

    def _take(self, kind: str, index: int) -> tuple[str, int | None, float] | None:
        for pos, (ekind, ejob, value) in enumerate(self.events):
            if ekind != kind:
                continue
            if ejob is None:
                return self.events[pos]
            if ejob == index and pos not in self._fired:
                self._fired.add(pos)
                return self.events[pos]
        return None

    def kill_before(self, index: int) -> bool:
        """Should a worker die around job ``index``?"""
        return self._take("kill", index) is not None

    def delay_for(self, index: int) -> float:
        """Seconds job ``index`` should stall inside the worker (0 = none)."""
        event = self._take("delay", index)
        return event[2] if event is not None else 0.0

    def corrupt_before(self, index: int) -> bool:
        """Should a segment of job ``index`` be corrupted before dispatch?"""
        return self._take("corrupt", index) is not None

    def corrupt_offset(self, nbytes: int) -> int:
        """Seeded byte offset to flip within an ``nbytes`` segment."""
        return int(self._rng.integers(0, max(1, nbytes)))

    def tear_save(self) -> bool:
        """Should the save happening *now* be torn? (internal save counter)"""
        index = self._saves_seen
        self._saves_seen += 1
        return self._take("tear", index) is not None

    def disk_fault_for_write(self) -> str | None:
        """Fault for the artifact-store write happening *now*, if any.

        Each call advances the plan's store-write counter (the disk
        analogue of ``tear_save``'s save counter). Returns
        ``"disk-tear"``, ``"disk-corrupt"`` or ``None``; a tear wins when
        both target the same write, because a torn entry never reaches
        the commit a corruption would flip.
        """
        index = self._store_writes_seen
        self._store_writes_seen += 1
        if self._take("disk-tear", index) is not None:
            return "disk-tear"
        if self._take("disk-corrupt", index) is not None:
            return "disk-corrupt"
        return None


# -- process-wide chaos install (test/CLI hook for the checkpoint tear) ----

_ACTIVE_CHAOS: ChaosPlan | None = None


def install_chaos(plan: ChaosPlan | None) -> ChaosPlan | None:
    """Make ``plan`` visible to checkpoint writers (``None`` uninstalls)."""
    global _ACTIVE_CHAOS
    _ACTIVE_CHAOS = plan
    return plan


def active_chaos() -> ChaosPlan | None:
    return _ACTIVE_CHAOS


# -- supervised execution ---------------------------------------------------


def run_supervised(
    start,
    resume,
    checkpoint_path: str,
    max_restarts: int = 2,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
):
    """Run ``start()``; on a crash, resume from ``checkpoint_path``.

    ``start`` launches the run from scratch; ``resume`` picks it up from
    the newest checkpoint under ``checkpoint_path`` (the training loops
    write an *emergency* checkpoint on the way down when
    ``emergency_checkpoint=True``, so a resume is almost always
    available). If no checkpoint exists yet the restart falls back to
    ``start`` again. After ``max_restarts`` failed attempts the last
    exception propagates — supervision is bounded, not a retry-forever
    loop.

    Restart *results* are bitwise-exact because resume is: both
    checkpoint formats capture every RNG stream and the loops re-derive
    identical draws (see DESIGN.md "Fault-tolerant runtime").
    """
    import os

    attempts = 0
    while True:
        try:
            if attempts == 0:
                return start()
            has_checkpoint = os.path.exists(
                os.path.join(checkpoint_path, "history.json")
            ) or os.path.exists(
                os.path.join(checkpoint_path, "async_state.json")
            )
            if has_checkpoint:
                return resume()
            return start()
        except retry_on:
            attempts += 1
            FAULTS["supervised_restarts"] += 1
            if attempts > max_restarts:
                raise
