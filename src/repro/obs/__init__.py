"""Campaign observability: metrics registry, dual-clock tracing, reports.

Three pillars (see DESIGN.md "Observability fabric"):

- :mod:`repro.obs.metrics` — one hierarchical counter/gauge/histogram
  tree, with an exact worker-shard merge protocol for counters
  incremented inside process-pool workers;
- :mod:`repro.obs.tracing` — wall-clock *and* virtual-clock spans,
  exported as JSONL and Perfetto-loadable Chrome trace JSON;
- :mod:`repro.obs.report` — the :class:`TelemetrySession` that snapshots
  everything to ``telemetry.jsonl`` and renders run summaries.

All of it is read-only with respect to training state, touches no RNG
stream, and is zero-cost when disabled.
"""

from repro.obs.metrics import (
    CounterGroup,
    Histogram,
    MetricsRegistry,
    export_group,
)
from repro.obs.report import TelemetrySession, write_jsonl
from repro.obs.tracing import Tracer

__all__ = [
    "CounterGroup",
    "Histogram",
    "MetricsRegistry",
    "TelemetrySession",
    "Tracer",
    "export_group",
    "write_jsonl",
]
