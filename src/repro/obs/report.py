"""Run reporting: the ``TelemetrySession`` and the shared JSONL writer.

A :class:`TelemetrySession` is the user-facing handle over the other two
observability pillars. Attached to an
:class:`~repro.experiments.common.ExperimentHarness` (or built by
``FedFTEDSConfig.telemetry_dir``), it

- owns a :class:`~repro.obs.metrics.MetricsRegistry` wired to every live
  counter group (module-level exported groups plus the harness's
  lazily-created feature runtime / segment pool / campaign backend);
- optionally installs a :class:`~repro.obs.tracing.Tracer` for dual-clock
  spans (``trace=True``);
- accumulates per-run evidence — evaluation fast-path counters and the
  observed simulated traffic from
  :func:`repro.fl.communication.history_communication` — via
  :meth:`record_run`;
- writes labelled registry snapshots to ``telemetry.jsonl``, exports
  ``trace.json`` (Chrome trace-event format) on close, and renders an
  end-of-run TTY summary: time breakdown, cache hit rates, bytes moved,
  eviction pressure, per-method traffic. With ``live_refresh > 0`` a
  daemon thread re-renders the summary periodically while the run is
  still going.

Counters reported by a session are *deltas against activation time*:
module-level groups (``solver.fused``, ``checkpoint``) outlive sessions,
and the experiment CLI runs many experiments through one process and one
harness, so each per-experiment session baselines the counter tree when
it activates and subtracts that baseline from every snapshot.

The session only ever *reads* engine state — it draws from no RNG stream
and mutates nothing the training paths consume, which is what the
telemetry-on/off bitwise-identity tests pin down.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Iterable

from repro.obs import metrics, tracing
from repro.obs.metrics import CounterGroup, MetricsRegistry
from repro.obs.tracing import Tracer

#: counter keys every Server publishes (the session-level accumulator
#: starts from the same shape so summaries are stable across runs)
_EVAL_KEYS = {
    "local_evals": 0,
    "pooled_evals": 0,
    "full_loads": 0,
    "theta_loads": 0,
    "feature_builds": 0,
}

_COMM_KEYS = {
    "download_parameters": 0,
    "upload_parameters": 0,
    "initial_download_parameters": 0,
    "total_bytes": 0,
    "runs": 0,
}


def write_jsonl(path: str, rows: Iterable[dict], append: bool = False) -> str:
    """Write dict rows as JSON Lines; the one telemetry wire-format writer.

    Shared by registry snapshots, span exports, and
    :meth:`repro.engine.records.EventLog.to_jsonl`, so every artifact a
    run emits is greppable/parseable with the same tooling.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a" if append else "w") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")
    return path


def _rate(hits: float, total: float) -> str:
    return f"{hits / total:6.1%}" if total else "   n/a"


def _mib(nbytes: float) -> str:
    return f"{nbytes / (1024 * 1024):.2f} MiB"


class TelemetrySession:
    """Campaign-scoped telemetry: registry + tracer + reports, one handle.

    Usable as a context manager (``with TelemetrySession(...) as t:``);
    :meth:`close` is idempotent. Everything is inert until
    :meth:`activate` — constructing a session costs nothing on any hot
    path.
    """

    def __init__(
        self,
        directory: str | None = None,
        trace: bool = False,
        live_refresh: float = 0.0,
        stream=None,
        snapshot_every: int = 1,
        max_trace_events: int = 500_000,
    ):
        self.directory = directory
        self.registry = MetricsRegistry()
        self.registry.add_source(metrics.exported_groups)
        self.tracer: Tracer | None = (
            Tracer(max_trace_events) if trace else None
        )
        self.live_refresh = float(live_refresh)
        self.stream = stream
        self.snapshot_every = max(1, int(snapshot_every))
        self.eval_totals = self.registry.register(
            CounterGroup("server.eval", dict(_EVAL_KEYS))
        )
        self.comm_totals = self.registry.register(
            CounterGroup("comm", dict(_COMM_KEYS))
        )
        self.run_seconds = self.registry.histogram("run.virtual_seconds")
        #: per-method observed traffic rows for the summary table
        self.method_traffic: dict[str, dict[str, int]] = {}
        self._baseline: dict[str, float] = {}
        self._runs_recorded = 0
        self._active = False
        self._closed = False
        self._stop = threading.Event()
        self._refresh_thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def activate(self) -> "TelemetrySession":
        if self._active:
            return self
        self._active = True
        if self.directory:
            os.makedirs(self.directory, exist_ok=True)
            # truncate: one session owns one telemetry.jsonl
            write_jsonl(self._jsonl_path(), [])
        self._baseline = self.registry.counters()
        if self.tracer is not None:
            tracing.install(self.tracer)
        if self.live_refresh > 0:
            self._refresh_thread = threading.Thread(
                target=self._refresh_loop, daemon=True
            )
            self._refresh_thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._refresh_thread is not None:
            self._refresh_thread.join(timeout=2.0)
        if self.tracer is not None and tracing.active() is self.tracer:
            tracing.uninstall()
        if self.directory:
            self.write_snapshot("final")
            if self.tracer is not None:
                write_jsonl(
                    self._jsonl_path(), self.tracer.jsonl_rows(), append=True
                )
                self.tracer.export_chrome(
                    os.path.join(self.directory, "trace.json")
                )
        if self.stream is not None:
            print(self.summary(), file=self.stream, flush=True)

    def __enter__(self) -> "TelemetrySession":
        return self.activate()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- wiring ------------------------------------------------------------

    def attach_harness(self, harness) -> None:
        """Follow a harness's lazily-created runtime counter groups."""
        self.registry.add_source(harness.telemetry_groups)

    def add_source(self, source) -> None:
        self.registry.add_source(source)

    # -- recording ---------------------------------------------------------

    def record_run(
        self,
        label: str,
        server=None,
        model=None,
        history=None,
        num_clients: int | None = None,
    ) -> None:
        """Fold one finished federated run into the session totals.

        Pure read-side accounting: evaluation counters are copied off the
        run's server, observed traffic is reconstructed from the finished
        history, and a labelled snapshot row goes to ``telemetry.jsonl``.
        """
        if server is not None:
            self.eval_totals.add(server.eval_stats)
        if model is not None and history is not None and num_clients:
            from repro.fl.communication import history_communication

            traffic = history_communication(model, history, num_clients)
            self.comm_totals["download_parameters"] += traffic.download_parameters
            self.comm_totals["upload_parameters"] += traffic.upload_parameters
            self.comm_totals["initial_download_parameters"] += (
                traffic.initial_download_parameters
            )
            self.comm_totals["total_bytes"] += traffic.bytes()
            self.comm_totals["runs"] += 1
            row = self.method_traffic.setdefault(
                label,
                {"runs": 0, "download": 0, "upload": 0, "initial": 0, "bytes": 0},
            )
            row["runs"] += 1
            row["download"] += traffic.download_parameters
            row["upload"] += traffic.upload_parameters
            row["initial"] += traffic.initial_download_parameters
            row["bytes"] += traffic.bytes()
        if history is not None:
            seconds = getattr(history, "total_client_seconds", None)
            if seconds is None:
                records = getattr(history, "records", [])
                seconds = (
                    records[-1].cumulative_client_seconds if records else 0.0
                )
            self.run_seconds.observe(float(seconds))
        self._runs_recorded += 1
        if self._runs_recorded % self.snapshot_every == 0:
            self.write_snapshot(label)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """The registry tree as session-relative deltas (plus gauges)."""
        flat = self.registry.snapshot()
        for name, base in self._baseline.items():
            if name in flat:
                flat[name] -= base
        return flat

    def write_snapshot(self, label: str | None = None) -> None:
        if not self.directory:
            return
        write_jsonl(
            self._jsonl_path(),
            [
                {
                    "type": "snapshot",
                    "label": label,
                    "unix_time": time.time(),
                    "counters": self.snapshot(),
                }
            ],
            append=True,
        )

    def _jsonl_path(self) -> str:
        return os.path.join(self.directory, "telemetry.jsonl")

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        """The end-of-run TTY report."""
        counters = self.snapshot()
        get = counters.get
        lines = ["== telemetry summary =="]

        if self.tracer is not None:
            by_name = sorted(
                self.tracer.summary_by_name().items(),
                key=lambda item: item[1][1],
                reverse=True,
            )
            if by_name:
                lines.append("-- wall-time breakdown (top spans) --")
                for name, (count, total) in by_name[:12]:
                    lines.append(
                        f"  {name:<28} {count:>7}x  {total:9.3f}s"
                    )
            if self.tracer.dropped:
                lines.append(
                    f"  (span buffer full: {self.tracer.dropped} dropped)"
                )

        feat_hits = get("features.hits", 0) + get("features.derived", 0)
        feat_total = feat_hits + get("features.builds", 0)
        pool_total = get("campaign.pool.hits", 0) + get(
            "campaign.pool.publishes", 0
        )
        eval_total = get("server.eval.theta_loads", 0) + get(
            "server.eval.full_loads", 0
        )
        lines.append("-- cache hit rates --")
        lines.append(
            f"  features (hit+derive/build)  {_rate(feat_hits, feat_total)}"
            f"   evictions {get('features.evictions', 0):.0f}"
        )
        lines.append(
            f"  segment pool                 "
            f"{_rate(get('campaign.pool.hits', 0), pool_total)}"
            f"   evictions {get('campaign.pool.evictions', 0):.0f}"
        )
        lines.append(
            f"  eval θ-only loads            "
            f"{_rate(get('server.eval.theta_loads', 0), eval_total)}"
            f"   pooled evals {get('server.eval.pooled_evals', 0):.0f}"
        )

        lines.append("-- bytes moved --")
        lines.append(
            f"  shm segments resident        "
            f"{_mib(get('campaign.pool.bytes', 0))}"
        )
        lines.append(
            f"  feature cache resident       {_mib(get('features.bytes', 0))}"
        )
        lines.append(
            f"  worker job payloads          "
            f"{_mib(get('backend.process.job_payload_bytes', 0))}"
        )
        lines.append(
            f"  checkpoint payloads          "
            f"{_mib(get('checkpoint.payload_bytes', 0))}"
        )
        lines.append(
            f"  simulated traffic            {_mib(get('comm.total_bytes', 0))}"
        )

        if self.method_traffic:
            lines.append("-- simulated traffic per method --")
            lines.append(
                f"  {'method':<28} {'runs':>4} {'down(param)':>12}"
                f" {'up(param)':>12} {'initial ϕ':>12} {'bytes':>12}"
            )
            for label, row in sorted(self.method_traffic.items()):
                lines.append(
                    f"  {label:<28.28} {row['runs']:>4}"
                    f" {row['download']:>12} {row['upload']:>12}"
                    f" {row['initial']:>12} {_mib(row['bytes']):>12}"
                )

        fused = get("solver.fused.fused_solves", 0)
        graph = get("solver.fused.graph_solves", 0)
        if fused or graph:
            lines.append("-- fused solver --")
            lines.append(
                f"  fused/graph solves           {fused:.0f}/{graph:.0f}"
                f"   plans {get('solver.fused.plans_built', 0):.0f}"
                f" (+{get('solver.fused.plan_failures', 0):.0f} fallbacks)"
            )
        if self.run_seconds.count:
            sums = self.run_seconds.summary()
            lines.append(
                f"-- runs -- {sums['count']:.0f} recorded,"
                f" simulated client time total {sums['total']:.1f}s"
                f" (mean {sums['mean']:.1f}s)"
            )
        return "\n".join(lines)

    def _refresh_loop(self) -> None:  # pragma: no cover - timing-dependent
        stream = self.stream if self.stream is not None else sys.stderr
        while not self._stop.wait(self.live_refresh):
            try:
                print(self.summary(), file=stream, flush=True)
            except Exception:
                return
