"""Unified metrics registry: typed counters/gauges/histograms in one tree.

PRs 3–5 each grew their own ad-hoc stats dict (``Server.eval_stats``,
``FeatureRuntime.stats``, ``CampaignSegmentPool.stats``,
``ProcessPoolBackend.stats``, and the fused-solver plan caches) with no
single place to read them. This module gives every counter a home in one
hierarchical namespace::

    campaign.pool.*      shm segment publishes / hits / evictions / bytes
    server.eval.*        evaluation fast-path counters
    features.*           frozen-ϕ cache builds / hits / derived / evictions
    checkpoint.*         journal appends / rewrites / payload bytes
    comm.*               simulated θ / full-model traffic
    solver.fused.*       fused-kernel plan builds and solve counts
    backend.process.*    warm-worker job dispatch and payload sizes
    faults.*             retries / respawns / timeouts / degradations and
                         injected chaos events (see repro.engine.faults)

Three design constraints shape the types here:

1. **Compatibility** — the existing stats dicts are asserted against with
   plain dict equality in tests and benchmarks, so :class:`CounterGroup`
   *is* a dict (subclass) that merely knows its namespace. Call sites keep
   writing ``stats["hits"] += 1``.
2. **Worker-shard merge** — counters incremented inside
   ``ProcessPoolBackend`` workers (the fused solver runs there) must end
   up in the parent registry *exactly*, not sampled. Module-level groups
   register themselves via :func:`export_group`; workers snapshot them
   before a job (:func:`shard_baseline`), diff after
   (:func:`shard_delta`), and the delta rides the existing job-result
   tuple back to the parent, which folds it in with
   :func:`merge_exported`. Serial backends increment the very same group
   objects directly, which is what makes the merge *exactness* testable:
   work counters must sum to the serial counts.
3. **Determinism** — nothing here touches an RNG stream or feeds back
   into control flow; counters are write-only from the engine's point of
   view.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator


class CounterGroup(dict):
    """A namespaced bundle of counters; behaves exactly like its dict.

    The subclass carries only the ``namespace`` used to flatten entries
    into dotted metric names — everything else (equality, iteration,
    ``+=`` updates, ``dict(group)`` copies) is inherited, so the ad-hoc
    stats dicts PRs 3–5 exposed keep their exact observable behaviour.
    """

    def __init__(self, namespace: str, initial: dict | None = None):
        super().__init__(initial or {})
        self.namespace = namespace

    def flat(self) -> dict[str, int | float]:
        """Entries as ``{"<namespace>.<key>": value}``."""
        prefix = self.namespace + "."
        return {prefix + key: value for key, value in self.items()}

    def add(self, other: dict) -> None:
        """Accumulate another group's (or plain dict's) counts into this."""
        for key, value in other.items():
            self[key] = self.get(key, 0) + value

    def __reduce__(self):
        # dict subclass with an extra attribute: make pickling explicit so
        # worker-side groups survive a spawn-context round trip unchanged.
        return (_rebuild_group, (self.namespace, dict(self)))


def _rebuild_group(namespace: str, items: dict) -> "CounterGroup":
    return CounterGroup(namespace, items)


class Histogram:
    """Streaming summary of an observed quantity (count/total/min/max).

    Deliberately bucket-free: telemetry must stay allocation-light on hot
    paths, and the run summaries only ever need totals and extremes.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """One queryable tree over every counter group, gauge and histogram.

    Groups register directly (:meth:`register`) or through *sources* —
    callables returning the groups that exist right now
    (:meth:`add_source`). Sources cover the lazily-created runtime
    objects: a harness only builds its segment pool / feature runtime /
    campaign backend on first use, so the registry resolves them at
    snapshot time instead of at attach time.
    """

    def __init__(self):
        self._groups: dict[str, CounterGroup] = {}
        self._sources: list[Callable[[], Iterable[CounterGroup]]] = []
        self._gauges: dict[str, Callable[[], float]] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def register(self, group: CounterGroup) -> CounterGroup:
        with self._lock:
            self._groups[group.namespace] = group
        return group

    def group(self, namespace: str, initial: dict | None = None) -> CounterGroup:
        """The registered group for ``namespace``, created if absent."""
        with self._lock:
            group = self._groups.get(namespace)
            if group is None:
                group = CounterGroup(namespace, initial)
                self._groups[namespace] = group
            return group

    def add_source(self, source: Callable[[], Iterable[CounterGroup]]) -> None:
        with self._lock:
            self._sources.append(source)

    def gauge(self, name: str, read: Callable[[], float]) -> None:
        with self._lock:
            self._gauges[name] = read

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram(name)
                self._histograms[name] = hist
            return hist

    def _live_groups(self) -> Iterator[CounterGroup]:
        seen: set[int] = set()
        with self._lock:
            groups = list(self._groups.values())
            sources = list(self._sources)
        for group in groups:
            seen.add(id(group))
            yield group
        for source in sources:
            for group in source():
                if group is not None and id(group) not in seen:
                    seen.add(id(group))
                    yield group

    def counters(self) -> dict[str, float]:
        """Flat counter entries only (no gauges / histogram summaries).

        This is the baseline-able part of a snapshot: sessions diff two
        ``counters()`` calls to report "what happened while I was active"
        even though module-level groups outlive any one session.
        """
        out: dict[str, float] = {}
        for group in self._live_groups():
            out.update(group.flat())
        return out

    def snapshot(self) -> dict[str, float]:
        """Flat ``{dotted.name: value}`` view of the whole tree.

        Later registrations win on namespace collisions, matching the
        "session-owned accumulators shadow per-run groups" convention in
        :class:`repro.obs.report.TelemetrySession`.
        """
        out = self.counters()
        with self._lock:
            gauges = list(self._gauges.items())
            hists = list(self._histograms.values())
        for name, read in gauges:
            try:
                out[name] = read()
            except Exception:  # a gauge must never take a run down
                out[name] = float("nan")
        for hist in hists:
            for key, value in hist.summary().items():
                out[f"{hist.name}.{key}"] = value
        return out

    def merge(self, deltas: dict[str, float]) -> None:
        """Fold flat dotted-name deltas into the matching groups."""
        for name, value in deltas.items():
            namespace, _, key = name.rpartition(".")
            group = self.group(namespace)
            group[key] = group.get(key, 0) + value


# --------------------------------------------------------------------------
# Exported (module-level) groups and the worker-shard merge protocol.
#
# Code that runs inside worker processes (the fused solver, eval shards)
# cannot hold a reference to the parent's registry. It increments
# per-process singleton groups registered here; the shard helpers below
# diff them around each job so the parent can reconstruct exact totals.

_EXPORTED: dict[str, CounterGroup] = {}
_EXPORT_LOCK = threading.Lock()


def export_group(namespace: str, initial: dict | None = None) -> CounterGroup:
    """The per-process singleton group for ``namespace`` (idempotent)."""
    with _EXPORT_LOCK:
        group = _EXPORTED.get(namespace)
        if group is None:
            group = CounterGroup(namespace, initial)
            _EXPORTED[namespace] = group
        elif initial:
            for key, value in initial.items():
                group.setdefault(key, value)
        return group


def exported_groups() -> list[CounterGroup]:
    """Every module-level group in this process (a registry source)."""
    with _EXPORT_LOCK:
        return list(_EXPORTED.values())


def shard_baseline() -> dict[str, float]:
    """Snapshot of the exported counters, taken at worker-job entry."""
    out: dict[str, float] = {}
    for group in exported_groups():
        out.update(group.flat())
    return out


def shard_delta(baseline: dict[str, float]) -> dict[str, float] | None:
    """What this job added on top of ``baseline`` (``None`` if nothing).

    Returning ``None`` for idle jobs keeps the serialized job-result
    payload unchanged in the common no-counters case.
    """
    delta = {
        name: value - baseline.get(name, 0)
        for name, value in shard_baseline().items()
        if value != baseline.get(name, 0)
    }
    return delta or None


def merge_exported(delta: dict[str, float] | None) -> None:
    """Parent-side fold of a worker shard delta into this process's groups."""
    if not delta:
        return
    for name, value in delta.items():
        namespace, _, key = name.rpartition(".")
        group = export_group(namespace)
        group[key] = group.get(key, 0) + value


def reset_exported() -> None:
    """Zero every exported counter (tests and benchmarks only)."""
    for group in exported_groups():
        for key in group:
            group[key] = 0
