"""Dual-clock tracing: wall-time spans plus the engine's virtual clock.

The async engine runs two clocks at once — real wall time (what the
simulator costs *us*) and the virtual `repro.engine.clock.VirtualClock`
(what the simulated federation costs *the clients*). A profiler that sees
only one of them cannot answer the paper's questions: "is pooled eval the
wall-time bottleneck?" needs the first, "which straggler stalls FedBuff?"
needs the second. Spans here record both:

- **wall spans** (:func:`span`) time a code region with
  ``perf_counter`` and optionally tag it with the virtual time it was
  processing;
- **virtual spans** (:func:`event_span` / :func:`virtual_span`) replay an
  engine event's ``[time - duration, time]`` window onto a separate
  track, one lane per client, so simulated stragglers are visually
  inspectable.

Exports are JSONL rows (via the telemetry writer) and Chrome trace-event
JSON loadable in Perfetto / ``chrome://tracing``: wall spans live on
pid 1, virtual spans on pid 2 with ``tid = client_id``.

Zero-cost when disabled is a hard requirement — spans sit on the client
round and event-processing hot paths. The module-level ``_TRACER`` guard
makes every helper a pointer test plus return of the ``_NULL_SPAN``
singleton: no object allocation, no kwargs dict, no closure. The
disabled-mode zero-allocation property is pinned by a test. Nothing in
this module reads or advances an RNG stream.
"""

from __future__ import annotations

import json
import time


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()

#: module-level guard: ``None`` means every helper is a no-op
_TRACER: "Tracer | None" = None


def install(tracer: "Tracer") -> "Tracer":
    """Make ``tracer`` the process-wide active tracer."""
    global _TRACER
    _TRACER = tracer
    return tracer


def uninstall() -> None:
    global _TRACER
    _TRACER = None


def active() -> "Tracer | None":
    return _TRACER


def span(name, virtual_time=None):
    """A wall-clock span context manager (the no-op singleton if disabled).

    Positional, simple-argument calling convention on purpose: the
    disabled path must not build a kwargs dict or any temporary.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return _Span(tracer, name, virtual_time)


def event_span(name, end_time, duration, track):
    """Record a finished engine event on the virtual-clock track.

    Callers pass the event's *end* time and duration verbatim (both
    already exist as floats on the event object); the subtraction that
    yields the start time only happens when a tracer is installed, so the
    disabled path allocates nothing.
    """
    tracer = _TRACER
    if tracer is not None:
        tracer.add_virtual(name, end_time - duration, duration, track)


def virtual_span(name, start, duration, track=0):
    """Record an explicit ``[start, start + duration]`` virtual interval."""
    tracer = _TRACER
    if tracer is not None:
        tracer.add_virtual(name, start, duration, track)


class _Span:
    __slots__ = ("_tracer", "_name", "_virtual_time", "_t0")

    def __init__(self, tracer: "Tracer", name, virtual_time):
        self._tracer = tracer
        self._name = name
        self._virtual_time = virtual_time

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        t0 = self._t0
        self._tracer.add_wall(
            self._name, t0, time.perf_counter() - t0, self._virtual_time
        )
        return False


class Tracer:
    """Bounded in-memory span store with JSONL and Chrome-trace export.

    ``max_events`` caps memory on long campaigns; overflow is counted in
    ``dropped`` rather than silently discarded (the summary reports it).
    List appends are atomic under the GIL, which is all the thread safety
    the replica-queue thread backend needs; exports copy before reading.
    """

    def __init__(self, max_events: int = 500_000):
        self.origin = time.perf_counter()
        self.max_events = max_events
        self.wall: list[tuple] = []
        self.virtual: list[tuple] = []
        self.dropped = 0

    # -- recording ---------------------------------------------------------

    def add_wall(self, name, t0, duration, virtual_time) -> None:
        if len(self.wall) >= self.max_events:
            self.dropped += 1
            return
        self.wall.append((name, t0 - self.origin, duration, virtual_time))

    def add_virtual(self, name, start, duration, track) -> None:
        if len(self.virtual) >= self.max_events:
            self.dropped += 1
            return
        self.virtual.append((name, start, duration, track))

    # -- aggregation -------------------------------------------------------

    def summary_by_name(self) -> dict[str, tuple[int, float]]:
        """``{span name: (count, total wall seconds)}`` over wall spans."""
        out: dict[str, tuple[int, float]] = {}
        for name, _, duration, _ in list(self.wall):
            count, total = out.get(name, (0, 0.0))
            out[name] = (count + 1, total + duration)
        return out

    # -- export ------------------------------------------------------------

    def jsonl_rows(self) -> list[dict]:
        """Span records in the telemetry JSONL wire format."""
        rows = []
        for name, start, duration, virtual_time in list(self.wall):
            row = {
                "type": "span",
                "name": name,
                "wall_start": start,
                "wall_seconds": duration,
            }
            if virtual_time is not None:
                row["virtual_time"] = virtual_time
            rows.append(row)
        for name, start, duration, track in list(self.virtual):
            rows.append(
                {
                    "type": "vspan",
                    "name": name,
                    "virtual_start": start,
                    "virtual_seconds": duration,
                    "track": track,
                }
            )
        return rows

    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON (the Perfetto-loadable dual-clock view).

        Track layout: pid 1 is the wall clock (one scheduler thread lane),
        pid 2 is the virtual clock with one ``tid`` lane per client (the
        FedBuff flush event's ``client_id = -1`` gets the server lane).
        Timestamps are microseconds, as the format requires; virtual
        seconds map 1:1 onto trace microseconds so straggler windows keep
        their proportions.
        """
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "wall clock"},
            },
            {
                "name": "process_name",
                "ph": "M",
                "pid": 2,
                "tid": 0,
                "args": {"name": "virtual clock (simulated)"},
            },
        ]
        for name, start, duration, virtual_time in list(self.wall):
            event = {
                "name": name,
                "cat": "wall",
                "ph": "X",
                "ts": start * 1e6,
                "dur": duration * 1e6,
                "pid": 1,
                "tid": 0,
            }
            if virtual_time is not None:
                event["args"] = {"virtual_time": virtual_time}
            events.append(event)
        tracks: set[int] = set()
        for name, start, duration, track in list(self.virtual):
            tracks.add(track)
            events.append(
                {
                    "name": name,
                    "cat": "virtual",
                    "ph": "X",
                    "ts": start * 1e6,
                    "dur": duration * 1e6,
                    "pid": 2,
                    "tid": track,
                }
            )
        for track in sorted(tracks):
            label = "server" if track < 0 else f"client {track}"
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 2,
                    "tid": track,
                    "args": {"name": label},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)
        return path
