"""Durable content-addressed artifact store: crash-safe cross-campaign caching.

Campaigns repeatedly rebuild artifacts that are pure functions of their
configuration — pretrained ϕ backbones, materialised feature segments
(keyed by the BLAKE2b ϕ fingerprints / ``phi_prefix_chain()`` digests the
backends already publish), benchmark baselines. This module persists them
under ``${REPRO_CACHE:-~/.cache/repro}`` so the experiment matrix
warm-starts across processes and days, **bitwise identical** to a cold
run.

Robustness is the contract, not a best effort:

- **Every write is durable or invisible.** Payload and CRC sidecar are
  each staged, fsynced and ``os.replace``-committed (the shared
  :func:`repro.utils.commit_staged` primitive extracted from the PR 9
  checkpoint writers); the sidecar commit is the entry's commit point, so
  a crash at any instant leaves either a complete entry or a torn one —
  never a partial read.
- **Every read is verified.** Loads CRC-check the payload against the
  sidecar; corrupt or torn entries are quarantined to ``quarantine/``
  and transparently rebuilt. A rebuilt entry must be byte-identical
  (content digest) to the quarantined one, otherwise the key is counted
  as *poisoned* and reported — a poisoned key means the key under-pins
  its inputs, which would silently break bitwise reproducibility.
- **Concurrent campaigns coordinate.** Per-entry ``O_CREAT|O_EXCL`` file
  locks (pid + timestamp) serialise builders; waiters re-probe under the
  lock and read the winner's entry instead of rebuilding (single-builder
  semantics). Locks from dead processes are detected and broken.
- **The byte-budget LRU extends to disk.** Memory evictions spill here
  (see ``FeatureRuntime.trim`` / ``CampaignSegmentPool.trim``); the disk
  budget GCs least-recently-used entries, skipping refcount-pinned ones.

Chaos hooks: ``ChaosPlan``'s ``disk-tear`` / ``disk-corrupt`` kinds fire
inside :meth:`ArtifactStore._put_locked`, tearing a write between the
payload and sidecar commits or flipping a committed byte, so the
quarantine/rebuild path is testable with the same seeded replayable
matrices as the rest of the fault layer.

On-disk layout (see DESIGN.md "Persistent artifact store")::

    <root>/objects/<kind>-<keydigest>.npz    payload (npz or json codec)
    <root>/objects/<kind>-<keydigest>.meta   CRC sidecar (JSON, commit point)
    <root>/objects/<kind>-<keydigest>.lock   per-entry builder lock
    <root>/quarantine/<entryname>.<pid>-<n>  quarantined corrupt/torn files

Everything observable lands in the exported ``store.*`` counter group so
telemetry sessions pick it up with zero wiring.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
import warnings
import zlib
from contextlib import contextmanager
from typing import Any, Callable, Iterator

import numpy as np

from repro.engine.faults import FAULTS, active_chaos
from repro.obs import metrics as obs_metrics
from repro.utils import commit_staged

#: every store event, exported for exact worker-shard merge and telemetry
STORE = obs_metrics.export_group(
    "store",
    {
        "hits": 0,
        "misses": 0,
        "builds_avoided": 0,
        "verifies": 0,
        "corruptions": 0,
        "quarantines": 0,
        "rebuilds": 0,
        "poisoned": 0,
        "writes": 0,
        "bytes": 0,
        "spills": 0,
        "evictions": 0,
        "lock_waits": 0,
        "locks_broken": 0,
    },
)

#: bump when the sidecar or payload encoding changes incompatibly
FORMAT = 1

_KIND_RE = re.compile(r"[^a-z0-9_-]+")
_SUFFIXES = (".npz", ".json", ".meta", ".lock")


def default_root() -> str:
    """``$REPRO_CACHE`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def _canonical(key: Any) -> Any:
    """Normalise a key to a JSON-stable structure (bytes → hex)."""
    if key is None or isinstance(key, (bool, int, str)):
        return key
    if isinstance(key, float):
        return repr(key)  # repr round-trips; json would localise precision
    if isinstance(key, bytes):
        return "0x" + key.hex()
    if isinstance(key, (tuple, list)):
        return [_canonical(item) for item in key]
    raise TypeError(f"unsupported artifact key component: {key!r}")


def canonical_key(key: Any) -> str:
    """Deterministic string form of ``key`` (what the digest covers)."""
    return json.dumps(_canonical(key), separators=(",", ":"))


def key_digest(key: Any) -> str:
    """Content address of ``key``: BLAKE2b-16 of its canonical form."""
    return hashlib.blake2b(
        canonical_key(key).encode("utf-8"), digest_size=16
    ).hexdigest()


def arrays_digest(arrays: dict[str, np.ndarray]) -> str:
    """Order-independent content digest of a named-array payload.

    Hashes (name, dtype, shape, bytes) per array in sorted key order —
    the identity a rebuilt entry must reproduce exactly. Deliberately not
    a digest of the npz file bytes: zip containers embed timestamps, so
    identical arrays would hash differently across writes.
    """
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        h.update(name.encode("utf-8"))
        h.update(str(value.dtype).encode("ascii"))
        h.update(repr(value.shape).encode("ascii"))
        h.update(value.tobytes())
    return h.hexdigest()


def _json_digest(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def resolve_store(
    artifact_store: "ArtifactStore | bool | None" = None,
    cache_dir: str | os.PathLike | None = None,
) -> "ArtifactStore | None":
    """The config-knob convention shared by the runner, campaign and harness.

    An :class:`ArtifactStore` instance passes through; ``True`` forces a
    store at ``cache_dir`` (or :func:`default_root`); ``False`` forces it
    off; ``None`` enables one exactly when ``cache_dir`` is set — so
    programmatic callers never touch ``~/.cache`` unless they ask to.
    """
    if isinstance(artifact_store, ArtifactStore):
        return artifact_store
    if artifact_store is None:
        artifact_store = cache_dir is not None
    return ArtifactStore(cache_dir) if artifact_store else None


class ArtifactStore:
    """Disk-backed content-addressed store of named-array / JSON entries.

    Keys are arbitrary nests of str/int/float/bytes/None/tuple (the repo
    convention: ``("feat", *shard_key, fingerprint)``, ``("pretrain",
    ...)`` — the BLAKE2b fingerprint bytes go in verbatim). ``byte_budget``
    bounds total on-disk size; ``trim`` evicts LRU unpinned entries.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        byte_budget: int | None = None,
        lock_timeout: float = 60.0,
        stale_lock_after: float = 60.0,
    ):
        self.root = os.path.abspath(os.fspath(root) if root else default_root())
        self.objects_dir = os.path.join(self.root, "objects")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        os.makedirs(self.objects_dir, exist_ok=True)
        os.makedirs(self.quarantine_dir, exist_ok=True)
        self.byte_budget = byte_budget
        self.lock_timeout = lock_timeout
        self.stale_lock_after = stale_lock_after
        #: entry base name → pin refcount (pinned entries survive trim)
        self._pins: dict[str, int] = {}
        #: entry base name → last quarantined sidecar; keeps the rebuild /
        #: poison accounting intact when the quarantine happened on an
        #: earlier ``get`` and the rebuild on a later ``get_or_build``
        self._stale_meta: dict[str, dict] = {}
        self._quarantine_seq = 0

    # -- paths ---------------------------------------------------------

    def _base(self, key: Any) -> str:
        kind = "obj"
        if isinstance(key, (tuple, list)) and key and isinstance(key[0], str):
            kind = _KIND_RE.sub("-", key[0].lower()) or "obj"
        return os.path.join(self.objects_dir, f"{kind}-{key_digest(key)}")

    # -- quarantine ----------------------------------------------------

    def _quarantine(self, *paths: str) -> bool:
        """Move existing ``paths`` aside; True if anything was moved."""
        moved = False
        for path in paths:
            if not os.path.exists(path):
                continue
            self._quarantine_seq += 1
            dest = os.path.join(
                self.quarantine_dir,
                f"{os.path.basename(path)}.{os.getpid()}-{self._quarantine_seq}",
            )
            try:
                os.replace(path, dest)
                moved = True
            except OSError:  # cross-device or raced away: drop instead
                try:
                    os.unlink(path)
                    moved = True
                except OSError:
                    pass
        return moved

    # -- probe / load --------------------------------------------------

    def _probe(self, key: Any) -> tuple[Any | None, dict | None]:
        """(value, sidecar) — or (None, stale sidecar) after quarantining.

        The stale sidecar (returned only when a corrupt/torn entry was
        just quarantined) carries the recorded content digest, which
        ``get_or_build`` compares against the rebuilt value to detect
        poisoned keys.
        """
        base = self._base(key)
        name = os.path.basename(base)
        meta_path = base + ".meta"
        lock_path = base + ".lock"
        payload_candidates = (base + ".npz", base + ".json")
        if not os.path.exists(meta_path):
            # payload without sidecar: a torn write (crash or disk-tear
            # chaos between the payload and sidecar commits) — unless a
            # live builder holds the lock, in which case the write is
            # simply in flight and this is an ordinary miss
            if os.path.exists(lock_path) and not self._lock_is_stale(lock_path):
                return None, None
            if self._quarantine(*payload_candidates):
                STORE["quarantines"] += 1
                self._stale_meta[name] = {"torn": True}
                return None, {"torn": True}
            return None, None
        try:
            with open(meta_path, "r", encoding="utf-8") as f:
                meta = json.load(f)
        except (OSError, ValueError):
            STORE["quarantines"] += 1
            self._quarantine(meta_path, *payload_candidates)
            self._stale_meta[name] = {"torn": True}
            return None, None
        payload_path = os.path.join(
            self.objects_dir, os.path.basename(str(meta.get("payload", "")))
        )
        if not meta.get("payload") or not os.path.exists(payload_path):
            STORE["quarantines"] += 1
            self._quarantine(meta_path, *payload_candidates)
            self._stale_meta[name] = meta
            return None, meta
        try:
            with open(payload_path, "rb") as f:
                data = f.read()
        except OSError:
            STORE["quarantines"] += 1
            self._quarantine(meta_path, *payload_candidates)
            self._stale_meta[name] = meta
            return None, meta
        STORE["verifies"] += 1
        if (
            meta.get("format") != FORMAT
            or len(data) != meta.get("nbytes")
            or zlib.crc32(data) != meta.get("crc")
        ):
            STORE["corruptions"] += 1
            STORE["quarantines"] += 1
            self._quarantine(meta_path, *payload_candidates)
            self._stale_meta[name] = meta
            return None, meta
        if meta.get("codec") == "json":
            value: Any = json.loads(data.decode("utf-8"))
        else:
            import io

            with np.load(io.BytesIO(data), allow_pickle=False) as archive:
                value = {name: archive[name].copy() for name in archive.files}
        # touch for LRU recency (trim orders by payload mtime)
        try:
            os.utime(payload_path)
        except OSError:
            pass
        return value, meta

    # -- locks ---------------------------------------------------------

    def _lock_is_stale(self, lock_path: str) -> bool:
        try:
            with open(lock_path, "r", encoding="utf-8") as f:
                pid = int(f.read().split()[0])
        except (OSError, ValueError, IndexError):
            pid = None  # mid-write or mangled: fall through to age check
        if pid is not None:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True  # owner is gone
            except (PermissionError, OSError):
                pass  # alive under another uid, or not checkable
        try:
            age = time.time() - os.stat(lock_path).st_mtime
        except OSError:
            return False  # raced away; not ours to break
        return age > self.stale_lock_after

    @contextmanager
    def _entry_lock(self, key: Any) -> Iterator[None]:
        """Per-entry builder lock with stale-lock breaking."""
        lock_path = self._base(key) + ".lock"
        start = time.monotonic()
        waited = False
        while True:
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._lock_is_stale(lock_path) or (
                    time.monotonic() - start > self.lock_timeout
                ):
                    try:
                        os.unlink(lock_path)
                        STORE["locks_broken"] += 1
                    except FileNotFoundError:
                        pass
                    continue
                if not waited:
                    waited = True
                    STORE["lock_waits"] += 1
                time.sleep(0.01)
                continue
            try:
                os.write(fd, f"{os.getpid()} {time.time():.3f}".encode("ascii"))
            finally:
                os.close(fd)
            break
        try:
            yield
        finally:
            try:
                os.unlink(lock_path)
            except FileNotFoundError:
                pass

    # -- write ---------------------------------------------------------

    def _put_locked(self, key: Any, value: Any, codec: str) -> bool:
        """Write an entry (caller holds the lock). True once durable."""
        base = self._base(key)
        payload_path = base + (".json" if codec == "json" else ".npz")
        if codec == "json":
            body = json.dumps(value, sort_keys=True).encode("utf-8")
            content = _json_digest(body)

            def write_payload(staging: str) -> None:
                with open(staging, "wb") as f:
                    f.write(body)

        else:
            content = arrays_digest(value)

            def write_payload(staging: str) -> None:
                with open(staging, "wb") as f:
                    # an open file handle, not a path: np.savez would
                    # append ".npz" to the staging name otherwise
                    np.savez(f, **{k: np.asarray(v) for k, v in value.items()})

        plan = active_chaos()
        fault = plan.disk_fault_for_write() if plan is not None else None
        commit_staged(payload_path, write_payload)
        with open(payload_path, "rb") as f:
            data = f.read()
        STORE["writes"] += 1
        STORE["bytes"] += len(data)
        if fault == "disk-tear":
            # crash window between payload and sidecar commit: the entry
            # stays torn until a reader quarantines and rebuilds it
            FAULTS["chaos_disk_tears"] += 1
            return False
        meta = {
            "format": FORMAT,
            "key": canonical_key(key),
            "payload": os.path.basename(payload_path),
            "codec": codec,
            "crc": zlib.crc32(data),
            "nbytes": len(data),
            "content": content,
        }

        def write_meta(staging: str) -> None:
            with open(staging, "w", encoding="utf-8") as f:
                json.dump(meta, f, sort_keys=True)

        commit_staged(base + ".meta", write_meta)
        if fault == "disk-corrupt":
            FAULTS["chaos_disk_corruptions"] += 1
            offset = plan.corrupt_offset(len(data))
            with open(payload_path, "r+b") as f:
                f.seek(offset)
                byte = f.read(1)
                f.seek(offset)
                f.write(bytes([byte[0] ^ 0xFF]))
        if self.byte_budget is not None:
            self.trim()
        return True

    # -- public API ----------------------------------------------------

    def contains(self, key: Any) -> bool:
        """Cheap existence check (stat only, no CRC verification)."""
        base = self._base(key)
        if not os.path.exists(base + ".meta"):
            return False
        return os.path.exists(base + ".npz") or os.path.exists(base + ".json")

    def get(self, key: Any) -> dict[str, np.ndarray] | None:
        """CRC-verified load; None on miss (corrupt entries quarantined)."""
        value, _ = self._probe(key)
        if value is None:
            STORE["misses"] += 1
            return None
        STORE["hits"] += 1
        return value

    def put(
        self, key: Any, arrays: dict[str, np.ndarray], overwrite: bool = False
    ) -> bool:
        """Durably store ``arrays`` under ``key``; False if already present."""
        if not overwrite and self.contains(key):
            return False
        with self._entry_lock(key):
            if not overwrite and self.contains(key):
                return False
            return self._put_locked(key, dict(arrays), "npz")

    def spill(self, key: Any, arrays: dict[str, np.ndarray]) -> bool:
        """A memory eviction landing on disk (counted as ``store.spills``)."""
        if self.put(key, arrays):
            STORE["spills"] += 1
            return True
        return False

    def get_or_build(
        self,
        key: Any,
        factory: Callable[[], dict[str, np.ndarray]],
        codec: str = "npz",
    ) -> tuple[Any, bool]:
        """Return ``(value, built)`` with single-builder coordination.

        A verified hit avoids the build entirely (``builds_avoided``).
        On a miss the builder lock is taken, the entry re-probed (another
        process may have just built it), and only then is ``factory()``
        run and its result committed. When the miss was a quarantined
        corrupt/torn entry the build counts as a *rebuild*, and the new
        content digest must match the quarantined sidecar's — otherwise
        the key is poisoned (under-pinned inputs) and reported.
        """
        name = os.path.basename(self._base(key))
        value, stale_meta = self._probe(key)
        if value is not None:
            STORE["hits"] += 1
            STORE["builds_avoided"] += 1
            self._stale_meta.pop(name, None)  # someone already rebuilt it
            return value, False
        STORE["misses"] += 1
        with self._entry_lock(key):
            value, stale2 = self._probe(key)
            if value is not None:
                STORE["hits"] += 1
                STORE["builds_avoided"] += 1
                self._stale_meta.pop(name, None)
                return value, False
            stale_meta = stale2 or stale_meta or self._stale_meta.get(name)
            built = factory()
            if stale_meta is not None:
                STORE["rebuilds"] += 1
                if codec == "json":
                    rebuilt_digest = _json_digest(
                        json.dumps(built, sort_keys=True).encode("utf-8")
                    )
                else:
                    rebuilt_digest = arrays_digest(built)
                recorded = stale_meta.get("content")
                if recorded is not None and rebuilt_digest != recorded:
                    STORE["poisoned"] += 1
                    warnings.warn(
                        f"artifact store key {canonical_key(key)} is poisoned: "
                        f"rebuilt content digest {rebuilt_digest} != recorded "
                        f"{recorded}; the key under-pins its inputs",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            self._put_locked(key, built, codec)
            self._stale_meta.pop(name, None)
            return built, True

    # JSON entries (benchmark baselines, small metadata)

    def get_json(self, key: Any) -> Any | None:
        value, _ = self._probe(key)
        if value is None:
            STORE["misses"] += 1
            return None
        STORE["hits"] += 1
        return value

    def put_json(self, key: Any, value: Any, overwrite: bool = False) -> bool:
        if not overwrite and self.contains(key):
            return False
        with self._entry_lock(key):
            if not overwrite and self.contains(key):
                return False
            return self._put_locked(key, value, "json")

    # -- pins & GC -----------------------------------------------------

    def pin(self, key: Any) -> None:
        """Refcount-protect ``key`` from ``trim`` eviction."""
        name = os.path.basename(self._base(key))
        self._pins[name] = self._pins.get(name, 0) + 1

    def unpin(self, key: Any) -> None:
        name = os.path.basename(self._base(key))
        count = self._pins.get(name, 0) - 1
        if count <= 0:
            self._pins.pop(name, None)
        else:
            self._pins[name] = count

    @contextmanager
    def pinned(self, key: Any) -> Iterator[None]:
        self.pin(key)
        try:
            yield
        finally:
            self.unpin(key)

    def _entries(self) -> list[tuple[float, int, str, list[str]]]:
        """(payload mtime, total bytes, base name, file paths) per entry."""
        grouped: dict[str, list[str]] = {}
        for name in os.listdir(self.objects_dir):
            stem, ext = os.path.splitext(name)
            if ext not in _SUFFIXES or ext == ".lock" or name.endswith(".tmp"):
                continue
            grouped.setdefault(stem, []).append(
                os.path.join(self.objects_dir, name)
            )
        entries = []
        for stem, paths in grouped.items():
            mtime, nbytes = 0.0, 0
            for path in paths:
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                nbytes += st.st_size
                if not path.endswith(".meta"):
                    mtime = max(mtime, st.st_mtime)
            entries.append((mtime, nbytes, stem, paths))
        entries.sort(key=lambda e: (e[0], e[2]))
        return entries

    def total_bytes(self) -> int:
        return sum(nbytes for _, nbytes, _, _ in self._entries())

    def trim(self, byte_budget: int | None = None) -> int:
        """Evict LRU unpinned entries until under budget; returns count."""
        budget = self.byte_budget if byte_budget is None else byte_budget
        if budget is None:
            return 0
        entries = self._entries()
        total = sum(nbytes for _, nbytes, _, _ in entries)
        evicted = 0
        for _, nbytes, stem, paths in entries:
            if total <= budget:
                break
            if self._pins.get(stem):
                continue
            for path in paths:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            total -= nbytes
            evicted += 1
            STORE["evictions"] += 1
        return evicted
