"""Batch-level input transforms (NCHW tensors)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils import make_rng


class Transform:
    """A callable mapping a batch ``(n, c, h, w)`` to a transformed batch."""

    def __call__(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Normalize(Transform):
    """Channel-wise standardisation ``(x - mean) / std``."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]):
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)
        if np.any(self.std <= 0):
            raise ValueError("std entries must be positive")

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return (x - self.mean[None, :, None, None]) / self.std[None, :, None, None]


class RandomHorizontalFlip(Transform):
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | int = 0):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p
        self.rng = make_rng(rng)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        flip = self.rng.random(len(x)) < self.p
        out = x.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out


class RandomCrop(Transform):
    """Zero-pad by ``padding`` then crop back to the original size."""

    def __init__(self, padding: int = 2, rng: np.random.Generator | int = 0):
        if padding <= 0:
            raise ValueError("padding must be positive")
        self.padding = padding
        self.rng = make_rng(rng)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.padding
        padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
        tops = self.rng.integers(0, 2 * p + 1, size=n)
        lefts = self.rng.integers(0, 2 * p + 1, size=n)
        out = np.empty_like(x)
        for i in range(n):
            out[i] = padded[i, :, tops[i] : tops[i] + h, lefts[i] : lefts[i] + w]
        return out


class Compose(Transform):
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Transform]):
        self.transforms = list(transforms)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        for t in self.transforms:
            x = t(x)
        return x
