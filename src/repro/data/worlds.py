"""Procedural "latent world" generator standing in for natural-image data.

The reproduction cannot download CIFAR/ImageNet, so datasets are generated
from a shared latent structure (DESIGN.md documents the substitution):

- A *world* owns a fixed random nonlinear **rendering network** mapping a
  latent vector to an image tensor. The renderer plays the role of natural
  image statistics: it is shared by every domain in the world, which is what
  makes a feature extractor pretrained on one domain transfer to another.
- A *domain* (one dataset: synthetic CIFAR-10, synthetic Small ImageNet, …)
  is a set of class prototypes in latent space drawn with a guaranteed
  minimum separation.
- Samples come in three kinds, mirroring the structure that entropy-based
  selection exploits on real data:

  - ``EASY``      near-prototype, redundant, confidently classified;
  - ``BOUNDARY``  between two prototypes, correctly labelled, informative;
  - ``NOISY``     an easy sample of *another* class with this class's label
                  (label noise).

Cross-domain worlds (the speech stand-in) share only the first rendering
stage, so pretrained low-level features transfer partially — reproducing the
paper's cross-domain setting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.utils import make_rng


class SampleKind(enum.IntEnum):
    """Provenance of a generated sample (exposed for analysis/tests)."""

    EASY = 0
    BOUNDARY = 1
    NOISY = 2


@dataclass(frozen=True)
class SampleMix:
    """Fractions of each sample kind in a generated dataset."""

    boundary: float = 0.35
    label_noise: float = 0.03

    def __post_init__(self):
        if not 0.0 <= self.boundary <= 1.0:
            raise ValueError("boundary fraction must be in [0, 1]")
        if not 0.0 <= self.label_noise <= 1.0:
            raise ValueError("label_noise fraction must be in [0, 1]")
        if self.boundary + self.label_noise > 1.0:
            raise ValueError("sample-kind fractions exceed 1")


class LatentWorld:
    """A fixed nonlinear renderer from latent space to image tensors.

    ``first_stage_from`` shares the first rendering stage with another world
    to model partially-overlapping low-level statistics across modalities.
    """

    def __init__(
        self,
        latent_dim: int,
        image_shape: tuple[int, int, int],
        seed: int,
        hidden_dim: int | None = None,
        first_stage_from: "LatentWorld | None" = None,
        second_stage_blend: float = 0.0,
    ):
        if latent_dim <= 1:
            raise ValueError("latent_dim must be > 1")
        if len(image_shape) != 3 or min(image_shape) <= 0:
            raise ValueError("image_shape must be (channels, height, width)")
        if not 0.0 <= second_stage_blend <= 1.0:
            raise ValueError("second_stage_blend must be in [0, 1]")
        if second_stage_blend > 0.0 and first_stage_from is None:
            raise ValueError("second_stage_blend requires first_stage_from")
        self.latent_dim = latent_dim
        self.image_shape = tuple(image_shape)
        self.hidden_dim = hidden_dim or 4 * latent_dim
        self.seed = seed
        rng = make_rng(seed)
        out_dim = int(np.prod(image_shape))
        if first_stage_from is not None:
            if first_stage_from.latent_dim != latent_dim:
                raise ValueError("shared first stage requires equal latent_dim")
            self.w1 = first_stage_from.w1
            self.b1 = first_stage_from.b1
            self.hidden_dim = first_stage_from.hidden_dim
        else:
            self.w1 = rng.normal(0, 1.0 / np.sqrt(latent_dim),
                                 size=(latent_dim, self.hidden_dim))
            self.b1 = rng.normal(0, 0.1, size=self.hidden_dim)
        own_w2 = rng.normal(0, 1.0 / np.sqrt(self.hidden_dim),
                            size=(self.hidden_dim, out_dim))
        if second_stage_blend > 0.0 and first_stage_from is not None:
            if first_stage_from.w2.shape != own_w2.shape:
                raise ValueError("second_stage_blend requires equal shapes")
            # Partially shared output statistics: the cross-domain target is
            # a different modality, but low-level structure overlaps enough
            # for pretrained frozen features to stay usable (Table IV regime).
            self.w2 = (
                second_stage_blend * first_stage_from.w2
                + (1.0 - second_stage_blend) * own_w2
            )
        else:
            self.w2 = own_w2

    def render(self, z: np.ndarray) -> np.ndarray:
        """Map latent vectors ``(n, latent_dim)`` to images ``(n, c, h, w)``."""
        z = np.atleast_2d(z)
        if z.shape[1] != self.latent_dim:
            raise ValueError(f"expected latent dim {self.latent_dim}, got {z.shape[1]}")
        hidden = np.tanh(z @ self.w1 + self.b1)
        flat = np.tanh(hidden @ self.w2)
        return flat.reshape(len(z), *self.image_shape)

    def make_domain(
        self,
        num_classes: int,
        seed: int,
        prototype_scale: float = 3.0,
        min_separation: float = 0.5,
    ) -> "ClassDomain":
        """Draw a new labelled domain (a dataset's class geometry)."""
        return ClassDomain(
            self, num_classes, seed, prototype_scale, min_separation
        )


class ClassDomain:
    """Class prototypes in a world's latent space + a sample generator."""

    def __init__(
        self,
        world: LatentWorld,
        num_classes: int,
        seed: int,
        prototype_scale: float = 3.0,
        min_separation: float = 0.5,
        max_tries: int = 1000,
    ):
        if num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        self.world = world
        self.num_classes = num_classes
        self.seed = seed
        self.prototype_scale = prototype_scale
        rng = make_rng(seed)
        prototypes: list[np.ndarray] = []
        for _ in range(num_classes):
            for _attempt in range(max_tries):
                cand = rng.normal(size=world.latent_dim)
                cand = prototype_scale * cand / np.linalg.norm(cand)
                if all(
                    np.linalg.norm(cand - p) >= min_separation * prototype_scale
                    for p in prototypes
                ):
                    prototypes.append(cand)
                    break
            else:
                raise RuntimeError(
                    "could not place well-separated prototypes; lower "
                    "num_classes or min_separation"
                )
        self.prototypes = np.stack(prototypes)

    @classmethod
    def derived(
        cls,
        source: "ClassDomain",
        num_classes: int,
        seed: int,
        perturbation: float = 0.3,
        world: "LatentWorld | None" = None,
    ) -> "ClassDomain":
        """A *close* domain: classes are perturbed source prototypes.

        This is how "CIFAR-10 is a close domain to Small ImageNet" is
        modelled (paper §IV-C): each target class reuses a source class's
        latent prototype, displaced by ``perturbation × prototype_scale`` in
        a random direction. Features that separate the source classes then
        transfer to the target, so a frozen pretrained extractor works —
        exactly the regime partial fine-tuning assumes. With
        ``num_classes`` larger than the source, several target classes
        derive from the same source prototype (a fine/coarse hierarchy,
        CIFAR-100 style).

        ``world`` optionally renders the derived domain through a different
        world (e.g. the partially-shared speech world): small perturbations
        + same world = close domain; large perturbations + partially-shared
        world = the paper's cross-domain regime, where pretrained features
        remain usable but clearly worse.
        """
        if num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if perturbation < 0:
            raise ValueError("perturbation must be non-negative")
        if world is not None and world.latent_dim != source.world.latent_dim:
            raise ValueError("override world must share the latent dimension")
        rng = make_rng(seed)
        parents = rng.choice(
            source.num_classes,
            size=num_classes,
            replace=num_classes > source.num_classes,
        )
        prototypes = source.prototypes[parents].copy()
        directions = rng.normal(size=prototypes.shape)
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        prototypes += perturbation * source.prototype_scale * directions
        domain = cls.__new__(cls)
        domain.world = world if world is not None else source.world
        domain.num_classes = num_classes
        domain.seed = seed
        domain.prototype_scale = source.prototype_scale
        domain.prototypes = prototypes
        return domain

    def sample(
        self,
        n: int,
        rng: np.random.Generator | int,
        mix: SampleMix = SampleMix(),
        latent_noise: float = 0.85,
        pixel_noise: float = 0.08,
        class_probs: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate ``(images, labels, kinds)`` for ``n`` samples.

        ``class_probs`` optionally skews the class marginal (used to build
        heterogeneous client shards directly when needed; the experiments
        normally use :func:`repro.data.partition.dirichlet_partition`
        instead).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        rng = make_rng(rng)
        if class_probs is None:
            labels = rng.integers(0, self.num_classes, size=n)
        else:
            class_probs = np.asarray(class_probs, dtype=np.float64)
            if class_probs.shape != (self.num_classes,):
                raise ValueError("class_probs must have one entry per class")
            class_probs = class_probs / class_probs.sum()
            labels = rng.choice(self.num_classes, size=n, p=class_probs)

        u = rng.random(n)
        kinds = np.full(n, SampleKind.EASY, dtype=np.int64)
        kinds[u < mix.boundary] = SampleKind.BOUNDARY
        kinds[u >= 1.0 - mix.label_noise] = SampleKind.NOISY

        z = self.prototypes[labels].copy()
        # Boundary samples sit partway toward another class's prototype.
        boundary_idx = np.where(kinds == SampleKind.BOUNDARY)[0]
        if boundary_idx.size:
            other = (
                labels[boundary_idx]
                + rng.integers(1, self.num_classes, size=boundary_idx.size)
            ) % self.num_classes
            lam = rng.uniform(0.25, 0.45, size=boundary_idx.size)[:, None]
            z[boundary_idx] = (1 - lam) * z[boundary_idx] + lam * self.prototypes[
                other
            ]
        # Label-noise samples render as a different class entirely.
        noisy_idx = np.where(kinds == SampleKind.NOISY)[0]
        if noisy_idx.size:
            other = (
                labels[noisy_idx]
                + rng.integers(1, self.num_classes, size=noisy_idx.size)
            ) % self.num_classes
            z[noisy_idx] = self.prototypes[other]

        z = z + latent_noise * rng.normal(size=z.shape)
        images = self.world.render(z)
        if pixel_noise:
            images = images + pixel_noise * rng.normal(size=images.shape)
        return images, labels, kinds
