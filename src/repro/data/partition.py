"""Client data partitioning: Dirichlet non-IID and IID.

The paper follows the standard recipe (Hsu et al., 2019): for every class,
draw a proportion vector over clients from ``Dir(alpha)`` and split that
class's samples accordingly. Small ``alpha`` → strongly skewed shards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import make_rng


def iid_partition(
    labels: np.ndarray, num_clients: int, rng: np.random.Generator | int
) -> list[np.ndarray]:
    """Shuffle and split indices evenly across ``num_clients``."""
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    labels = np.asarray(labels)
    if len(labels) < num_clients:
        raise ValueError("fewer samples than clients")
    rng = make_rng(rng)
    order = rng.permutation(len(labels))
    return [np.sort(part) for part in np.array_split(order, num_clients)]


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    rng: np.random.Generator | int,
    min_size: int = 2,
    max_tries: int = 100,
) -> list[np.ndarray]:
    """Dirichlet non-IID split of sample indices by label.

    Redraws until every client holds at least ``min_size`` samples, which is
    the standard guard against degenerate shards at very small ``alpha``.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    labels = np.asarray(labels)
    if len(labels) < num_clients * min_size:
        raise ValueError("not enough samples to give every client min_size")
    rng = make_rng(rng)
    classes = np.unique(labels)
    result: list[np.ndarray] | None = None
    for _attempt in range(max_tries):
        shards: list[list[np.ndarray]] = [[] for _ in range(num_clients)]
        for cls in classes:
            idx = np.where(labels == cls)[0]
            rng.shuffle(idx)
            props = rng.dirichlet(np.full(num_clients, alpha))
            # Cumulative proportions → split points into this class's indices.
            cuts = (np.cumsum(props)[:-1] * len(idx)).astype(int)
            for client, part in enumerate(np.split(idx, cuts)):
                shards[client].append(part)
        sizes = [sum(len(p) for p in parts) for parts in shards]
        result = [
            np.concatenate(parts) if parts else np.empty(0, np.int64)
            for parts in shards
        ]
        if min(sizes) >= min_size:
            return [np.sort(shard) for shard in result]
    # Extreme alpha can make min_size unreachable by redrawing (a class's
    # whole mass lands on one client); rebalance the last draw instead by
    # moving samples from the largest shards to the starved ones.
    assert result is not None
    pool = [list(shard) for shard in result]
    while True:
        sizes = np.array([len(shard) for shard in pool])
        needy = int(np.argmin(sizes))
        if sizes[needy] >= min_size:
            break
        donor = int(np.argmax(sizes))
        if sizes[donor] <= min_size:
            raise RuntimeError(
                "not enough samples to rebalance the partition to min_size"
            )
        take = rng.integers(0, len(pool[donor]))
        pool[needy].append(pool[donor].pop(int(take)))
    return [np.sort(np.asarray(shard, dtype=np.int64)) for shard in pool]


@dataclass(frozen=True)
class PartitionStatistics:
    """Summary of how heterogeneous a partition is."""

    sizes: np.ndarray
    class_counts: np.ndarray  # (clients, classes)
    mean_effective_classes: float  # exp(entropy) of per-client label dist

    def __str__(self) -> str:  # pragma: no cover - convenience formatting
        return (
            f"PartitionStatistics(clients={len(self.sizes)}, "
            f"sizes=[{self.sizes.min()}..{self.sizes.max()}], "
            f"mean_effective_classes={self.mean_effective_classes:.2f})"
        )


def partition_statistics(
    labels: np.ndarray, shards: list[np.ndarray], num_classes: int
) -> PartitionStatistics:
    """Compute per-client sizes, class histograms and effective class count."""
    labels = np.asarray(labels)
    counts = np.zeros((len(shards), num_classes), dtype=np.int64)
    for i, shard in enumerate(shards):
        values, freq = np.unique(labels[shard], return_counts=True)
        counts[i, values] = freq
    sizes = counts.sum(axis=1)
    probs = counts / np.clip(sizes[:, None], 1, None)
    with np.errstate(divide="ignore", invalid="ignore"):
        ent = -np.nansum(np.where(probs > 0, probs * np.log(probs), 0.0), axis=1)
    return PartitionStatistics(
        sizes=sizes,
        class_counts=counts,
        mean_effective_classes=float(np.mean(np.exp(ent))),
    )
