"""Dataset containers and a minimal batch loader."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np


class Dataset:
    """Abstract indexed dataset of ``(x, y)`` pairs backed by arrays."""

    def __len__(self) -> int:
        raise NotImplementedError

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the full ``(inputs, labels)`` arrays (views where possible)."""
        raise NotImplementedError

    @property
    def labels(self) -> np.ndarray:
        return self.arrays()[1]

    def subset(self, indices: Sequence[int]) -> "Subset":
        return Subset(self, np.asarray(indices, dtype=np.int64))


class ArrayDataset(Dataset):
    """In-memory dataset over a pair of aligned arrays."""

    def __init__(self, inputs: np.ndarray, labels: np.ndarray):
        inputs = np.asarray(inputs, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if len(inputs) != len(labels):
            raise ValueError(
                f"inputs ({len(inputs)}) and labels ({len(labels)}) disagree"
            )
        self._inputs = inputs
        self._labels = labels

    def __len__(self) -> int:
        return len(self._labels)

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self._inputs, self._labels

    @property
    def labels(self) -> np.ndarray:
        return self._labels


class Subset(Dataset):
    """A view of a parent dataset restricted to given indices."""

    def __init__(self, parent: Dataset, indices: np.ndarray):
        indices = np.asarray(indices, dtype=np.int64)
        n = len(parent)
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise IndexError("subset indices out of range")
        self.parent = parent
        self.indices = indices

    def __len__(self) -> int:
        return len(self.indices)

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        x, y = self.parent.arrays()
        return x[self.indices], y[self.indices]

    @property
    def labels(self) -> np.ndarray:
        """Label gather without materialising the input rows.

        ``arrays()[1]`` would copy the (much larger) input side too; label
        consumers — the fused solver hands just labels to its plan — skip
        that entirely.
        """
        return self.parent.labels[self.indices]


class DataLoader:
    """Mini-batch iterator with optional seeded shuffling.

    Reshuffles on every iteration pass when ``shuffle`` is set, drawing from
    its own generator so epochs are reproducible.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if shuffle and rng is None:
            raise ValueError("shuffle=True requires an explicit rng")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        x, y = self.dataset.arrays()
        n = len(y)
        order = np.arange(n)
        if self.shuffle:
            order = self.rng.permutation(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            if len(idx) == 0:
                break
            yield x[idx], y[idx]
