"""Factories for the paper's datasets, as synthetic stand-ins.

One world ("vision") hosts the Small ImageNet source domain and the
CIFAR-10/100 target domains: they share the renderer (→ transferable
low-level statistics) and the targets' class prototypes are *near*-perturbed
source prototypes (→ close domains, as CIFAR is to ImageNet). The
speech-commands stand-in is the cross-domain case on both axes: a partially
shared renderer and *far*-perturbed prototypes.

``image_size``/class counts default to the `default` reproduction scale
(see DESIGN.md): large enough to show every effect, small enough for CPU
NumPy. ``paper`` scale uses the true sizes (32×32, 100 classes, …).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.worlds import ClassDomain, LatentWorld, SampleMix
from repro.utils import make_rng

#: Seed offsets so each domain's geometry is independent of the others.
_DOMAIN_SEEDS = {
    "small_imagenet": 101,
    "cifar10": 202,
    "cifar100": 303,
    "speech_commands": 404,
}


@dataclass(frozen=True)
class DomainSpec:
    """A generated dataset pair plus its generating domain."""

    name: str
    train: ArrayDataset
    test: ArrayDataset
    domain: ClassDomain
    num_classes: int

    @property
    def input_shape(self) -> tuple[int, int, int]:
        x, _ = self.train.arrays()
        return tuple(x.shape[1:])


def make_vision_world(
    seed: int, image_size: int = 12, latent_dim: int = 24
) -> LatentWorld:
    """The shared renderer behind Small ImageNet and CIFAR-10/100 stand-ins."""
    return LatentWorld(latent_dim, (3, image_size, image_size), seed=seed)


def _build(
    name: str,
    world: LatentWorld,
    num_classes: int,
    train_size: int,
    test_size: int,
    seed: int,
    mix: SampleMix,
    derived_from: ClassDomain | None = None,
    perturbation: float = 0.3,
    world_override: LatentWorld | None = None,
) -> DomainSpec:
    if derived_from is not None:
        domain = ClassDomain.derived(
            derived_from,
            num_classes,
            seed=_DOMAIN_SEEDS[name] + seed,
            perturbation=perturbation,
            world=world_override,
        )
    else:
        domain = world.make_domain(num_classes, seed=_DOMAIN_SEEDS[name] + seed)
    rng = make_rng(seed * 7919 + _DOMAIN_SEEDS[name])
    x_tr, y_tr, _ = domain.sample(train_size, rng, mix=mix)
    x_te, y_te, _ = domain.sample(test_size, rng, mix=SampleMix(boundary=0.35,
                                                                label_noise=0.0))
    return DomainSpec(
        name=name,
        train=ArrayDataset(x_tr, y_tr),
        test=ArrayDataset(x_te, y_te),
        domain=domain,
        num_classes=num_classes,
    )


def make_small_imagenet(
    world: LatentWorld,
    seed: int = 0,
    num_classes: int = 20,
    train_size: int = 4000,
    test_size: int = 1000,
) -> DomainSpec:
    """Synthetic stand-in for the 32×32 Small ImageNet pretraining source.

    More classes and more data than the targets, as in the paper, so the
    pretrained feature extractor sees broad diversity.
    """
    return _build(
        "small_imagenet", world, num_classes, train_size, test_size, seed,
        SampleMix(boundary=0.3, label_noise=0.0),
    )


#: Number of classes in the default-scale synthetic Small ImageNet source.
SOURCE_CLASSES = 20


def _source_domain(
    world: LatentWorld, seed: int, num_classes: int = SOURCE_CLASSES
) -> ClassDomain:
    """The source-domain class geometry (shared by all close-domain targets)."""
    return world.make_domain(num_classes, seed=_DOMAIN_SEEDS["small_imagenet"] + seed)


def make_cifar10(
    world: LatentWorld,
    seed: int = 0,
    num_classes: int = 10,
    train_size: int = 3000,
    test_size: int = 1000,
    source_domain: ClassDomain | None = None,
) -> DomainSpec:
    """Synthetic CIFAR-10: a *close* target domain.

    Class prototypes are perturbed copies of source-domain prototypes
    (see :meth:`ClassDomain.derived`), so pretrained features transfer —
    the paper's close-domain evaluation setting (§IV-C).
    """
    source = source_domain or _source_domain(world, seed)
    return _build(
        "cifar10", world, num_classes, train_size, test_size, seed,
        SampleMix(boundary=0.35, label_noise=0.03),
        derived_from=source,
    )


def make_cifar100(
    world: LatentWorld,
    seed: int = 0,
    num_classes: int = 20,
    train_size: int = 3000,
    test_size: int = 1000,
    source_domain: ClassDomain | None = None,
) -> DomainSpec:
    """Synthetic CIFAR-100: a close target domain with more classes.

    Several target classes derive from each source prototype (fine/coarse
    hierarchy). At `paper` scale ``num_classes=100``; the default keeps 20
    so the head stays cheap while preserving the "harder task, lower
    accuracy" ordering relative to CIFAR-10.
    """
    source = source_domain or _source_domain(world, seed)
    return _build(
        "cifar100", world, num_classes, train_size, test_size, seed,
        SampleMix(boundary=0.35, label_noise=0.03),
        derived_from=source,
        perturbation=0.35,
    )


def make_speech_commands(
    vision_world: LatentWorld,
    seed: int = 0,
    num_classes: int = 12,
    train_size: int = 3000,
    test_size: int = 1000,
    source_domain: ClassDomain | None = None,
    perturbation: float = 1.3,
) -> DomainSpec:
    """Synthetic Google-Speech-Commands stand-in (cross-domain target).

    Cross-domain is modelled on both axes: the renderer shares only part of
    its structure with the vision world (full first stage, 60% of the
    second), and class prototypes are *far*-perturbed source prototypes
    (``perturbation=1.3`` vs 0.3 for the close-domain CIFAR stand-ins).
    Pretrained frozen features therefore remain usable but clearly worse —
    the Table IV regime, where pretraining still helps yet a large gap to
    centralised training remains.
    """
    speech_world = LatentWorld(
        vision_world.latent_dim,
        vision_world.image_shape,
        seed=vision_world.seed + 9999,
        first_stage_from=vision_world,
        second_stage_blend=0.6,
    )
    source = source_domain or _source_domain(vision_world, seed)
    return _build(
        "speech_commands", speech_world, num_classes, train_size, test_size,
        seed, SampleMix(boundary=0.35, label_noise=0.03),
        derived_from=source,
        perturbation=perturbation,
        world_override=speech_world,
    )
