"""Data substrate: synthetic dataset worlds and non-IID partitioning.

The paper evaluates on CIFAR-10/100 (target), Small ImageNet (pretraining
source) and Google Speech Commands (cross-domain target). None of those are
downloadable offline, so this package provides procedural stand-ins built on
a shared :class:`~repro.data.worlds.LatentWorld` (see DESIGN.md for why the
substitution preserves the behaviours under study), plus the Dirichlet
non-IID partitioner the paper uses to distribute client data.
"""

from repro.data.dataset import ArrayDataset, DataLoader, Dataset, Subset
from repro.data.worlds import ClassDomain, LatentWorld, SampleKind
from repro.data.synthetic import (
    DomainSpec,
    make_cifar10,
    make_cifar100,
    make_small_imagenet,
    make_speech_commands,
)
from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    partition_statistics,
)
from repro.data.transforms import (
    Compose,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "DataLoader",
    "LatentWorld",
    "ClassDomain",
    "SampleKind",
    "DomainSpec",
    "make_cifar10",
    "make_cifar100",
    "make_small_imagenet",
    "make_speech_commands",
    "dirichlet_partition",
    "iid_partition",
    "partition_statistics",
    "Compose",
    "Normalize",
    "RandomCrop",
    "RandomHorizontalFlip",
]
